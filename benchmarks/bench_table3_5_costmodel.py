"""Tables 3 and 5: measured disk accesses vs the analytic cost model.

Each operation's measured block I/O is checked against the paper's
formulas (Section 3.1 / 4.3), instantiated with the store's actual shape
(levels, blocks, posting-list lengths).  Absolute agreement is not the
goal — the formulas are worst cases — but the measured numbers must fall
within the bounds and reproduce the orderings the paper derives from them.
"""

import pytest

from harness import (
    BENCH_PROFILE,
    ResultTable,
    bench_options,
)

from repro.core.base import IndexKind
from repro.core.costmodel import CostModel
from repro.core.database import SecondaryIndexedDB
from repro.workloads.tweets import TweetGenerator

_N = 2500
_K = 10
_TABLE = ResultTable(
    "table3_5_costmodel",
    "Tables 3/5 — measured disk accesses vs analytic model (K=10)",
    ["operation", "variant", "model", "measured", "verdict"])
_STATE: dict = {}


def _build(kind):
    generator = TweetGenerator(BENCH_PROFILE, seed=17)
    db = SecondaryIndexedDB.open_memory(
        indexes={"UserID": kind}, options=bench_options())
    for key, doc in generator.tweets(_N):
        db.put(key, doc)
    return db


def _index_levels(db):
    index_db = getattr(next(iter(db.indexes.values())), "index_db", None)
    if index_db is None:
        return db.primary.num_nonempty_levels()
    return index_db.num_nonempty_levels()


def _index_reads(db):
    index_db = getattr(next(iter(db.indexes.values())), "index_db", None)
    if index_db is None:
        return 0
    return index_db.vfs.stats.read_blocks


def _check(operation, kind, model_value, measured, ok):
    _TABLE.add(operation, kind.value, model_value, f"{measured:.1f}",
               "ok" if ok else "VIOLATION")
    assert ok, (operation, kind, model_value, measured)


@pytest.mark.parametrize(
    "kind", [IndexKind.EMBEDDED, IndexKind.EAGER, IndexKind.LAZY,
             IndexKind.COMPOSITE], ids=lambda k: k.value)
def test_tables_3_5_per_variant(benchmark, kind):
    db = benchmark.pedantic(_build, args=(kind,), rounds=1, iterations=1)
    levels = _index_levels(db)

    # --- GET: 1 disk access for every variant (Table 3 & 5, GET row). ----
    # A warm-up pass loads each file's index/filter metadata (the paper's
    # memory-resident metadata); the measured pass counts only data-block
    # reads, which is what the paper's "disk access" means.
    keys = [f"t{i:010d}" for i in range(0, _N, 37)]
    for key in keys:
        db.get(key)
    reads_before = db.primary.vfs.stats.reads_by_category.get("data", 0)
    for key in keys:
        db.get(key)
    per_get = (db.primary.vfs.stats.reads_by_category.get("data", 0)
               - reads_before) / len(keys)
    _check("GET", kind, "1 (+bloom fp)", per_get, per_get <= 2.0)

    # --- PUT: index-table accesses per write (Table 5 PUT/DEL row). -------
    index_reads_before = _index_reads(db)
    generator = TweetGenerator(BENCH_PROFILE, seed=99)
    extra = 200
    for key, doc in generator.tweets(extra):
        db.put("x" + key, doc)
    put_index_reads = (_index_reads(db) - index_reads_before) / extra
    if kind == IndexKind.EAGER:
        # Eager reads the posting list back on every PUT (l = 1 here).
        _check("PUT index reads", kind, ">= l = 1", put_index_reads,
               put_index_reads >= 0.5)
    else:
        # Lazy/Composite/Embedded never read the index table on writes.
        _check("PUT index reads", kind, "0", put_index_reads,
               put_index_reads <= 0.1)

    # --- LOOKUP(A, a, K): Table 3 (Embedded) / Table 5 (Stand-Alone). ----
    hot_users = [f"u{r:05d}" for r in range(8)]
    gets_before = db.checker.validation_gets
    reads_before = db.primary.vfs.stats.read_blocks
    index_before = _index_reads(db)
    if kind == IndexKind.EMBEDDED:
        index = db.indexes["UserID"]
        index.blocks_read = 0
        for user in hot_users:
            db.lookup("UserID", user, _K)
        blocks = index.blocks_read / len(hot_users)
        model = CostModel(
            levels=levels, level0_blocks=50,
            bloom_bits_per_key=db.primary.options
            .secondary_bloom_bits_per_key)
        # The K + eps term: matched blocks; eps covers scanning to the end
        # of each level.  Bound generously by the number of blocks that can
        # contain matches for a hot user.
        bound = model.lookup_cost(IndexKind.EMBEDDED, k_matched=_K,
                                  epsilon=4 * levels)
        _check("LOOKUP blocks", kind, f"<= {bound:.0f}", blocks,
               blocks <= bound + 1)
    else:
        for user in hot_users:
            db.lookup("UserID", user, _K)
        index_blocks = (_index_reads(db) - index_before) / len(hot_users)
        if kind == IndexKind.EAGER:
            # One posting-list read; long lists may span a few blocks.
            _check("LOOKUP index reads", kind, "~1 list", index_blocks,
                   index_blocks <= 4)
        else:
            # Up to L index-table accesses (fragments / prefix per level).
            _check("LOOKUP index reads", kind, f"<= L+eps (L={levels})",
                   index_blocks, index_blocks <= 3 * levels + 2)
        validation = (db.checker.validation_gets - gets_before) \
            / len(hot_users)
        _check("LOOKUP data GETs", kind, f"~K' >= K={_K}", validation,
               validation <= 3 * _K)

    _STATE[kind] = {"index_write_bytes": _total_index_write_bytes(db)}
    db.close()
    if len(_STATE) == 4:
        _finalize_wamf()


def _total_index_write_bytes(db):
    total = 0
    seen = {id(db.primary.vfs)}
    for index in db.indexes.values():
        index_db = getattr(index, "index_db", None)
        if index_db is not None and id(index_db.vfs) not in seen:
            seen.add(id(index_db.vfs))
            total += index_db.vfs.stats.write_bytes
    return total


def _finalize_wamf():
    # --- Write amplification (Table 5's WAMF column). ---------------------
    # Measured as total bytes ever written to the index table per PUT
    # (WAL + flush + every compaction rewrite).  The paper's closed forms
    # are per-record rewrite counts, so the comparable signal is the
    # ordering: Eager (PL_S * 22(L-1)) must dwarf Lazy and Composite, which
    # share the plain-table 22(L-1).
    amps = {}
    for kind in (IndexKind.EAGER, IndexKind.LAZY, IndexKind.COMPOSITE):
        amps[kind] = _STATE[kind]["index_write_bytes"] / _N
        _TABLE.add("WAMF (index bytes/put)", kind.value,
                   "PL_S*22(L-1)" if kind == IndexKind.EAGER else "22(L-1)",
                   f"{amps[kind]:.0f}", "ok")
    _TABLE.write()
    assert amps[IndexKind.EAGER] > 2 * amps[IndexKind.LAZY]
    assert amps[IndexKind.EAGER] > 2 * amps[IndexKind.COMPOSITE]
    ratio = amps[IndexKind.LAZY] / amps[IndexKind.COMPOSITE]
    assert 0.25 < ratio < 4.0  # same model value: same ballpark
