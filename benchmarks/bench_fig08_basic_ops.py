"""Figure 8: how each index variant affects basic LevelDB operations.

* (a) database size — Embedded ≈ NoIndex < stand-alone variants; Eager's
  lists are more compact than Lazy's fragments *after compaction*, but its
  obsolete list versions inflate the live tree between compactions.
* (b) PUT cost — Embedded near-zero overhead; Composite < Lazy < Eager.
* (c) GET cost — identical across variants (no index touches the GET path).
"""

import random

import pytest

from harness import (
    ALL_KINDS,
    ResultTable,
    build_static,
    index_io,
)

from repro.core.base import IndexKind

_SIZE_TABLE = ResultTable(
    "fig08a_sizes",
    "Figure 8a — database size per index variant (bytes)",
    ["variant", "primary", "index:UserID", "index:CreationTime", "total"])
_PUT_TABLE = ResultTable(
    "fig08b_put",
    "Figure 8b — PUT cost per variant (6000 tweets, 2 indexed attributes)",
    ["variant", "build_seconds", "us_per_put", "index_write_blocks",
     "index_read_blocks", "index_compaction_blocks"])
_GET_TABLE = ResultTable(
    "fig08c_get",
    "Figure 8c — GET latency parity across variants",
    ["variant", "us_per_get", "primary_read_blocks_per_get"])

_RESULTS: dict = {}


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_fig08_build_and_get(benchmark, kind):
    """Builds one variant (timed), then measures GETs on it."""
    import time

    started = time.perf_counter()
    db, workload = build_static(kind)
    build_seconds = time.perf_counter() - started
    db.flush()

    breakdown = db.size_breakdown()
    _SIZE_TABLE.add(kind.value, breakdown["primary"],
                    breakdown["index:UserID"],
                    breakdown["index:CreationTime"],
                    sum(breakdown.values()))

    io = index_io(db)
    _PUT_TABLE.add(kind.value, f"{build_seconds:.2f}",
                   f"{build_seconds * 1e6 / len(workload.tweets):.1f}",
                   io["write"], io["read"], io["compaction"])

    rng = random.Random(99)
    keys = [key for key, _doc in rng.sample(workload.tweets, 200)]
    reads_before = db.primary.vfs.stats.read_blocks

    def do_gets():
        for key in keys:
            db.get(key)

    benchmark.pedantic(do_gets, rounds=3, iterations=1)
    reads = db.primary.vfs.stats.read_blocks - reads_before
    per_get = benchmark.stats.stats.mean * 1e6 / len(keys)
    _GET_TABLE.add(kind.value, f"{per_get:.1f}", f"{reads / (3 * 200):.2f}")

    _RESULTS[kind] = {
        "total_size": sum(breakdown.values()),
        "index_size": breakdown["index:UserID"]
        + breakdown["index:CreationTime"],
        "index_writes": io["write"],
        "index_reads": io["read"],
        "get_us": per_get,
    }
    db.close()

    if len(_RESULTS) == len(ALL_KINDS):
        _finalize()


def _finalize():
    for table in (_SIZE_TABLE, _PUT_TABLE, _GET_TABLE):
        table.write()
    res = _RESULTS
    # (a) Embedded adds no separate index table; stand-alone variants do.
    assert res[IndexKind.EMBEDDED]["index_size"] == 0
    assert res[IndexKind.NOINDEX]["index_size"] == 0
    for kind in (IndexKind.EAGER, IndexKind.LAZY, IndexKind.COMPOSITE):
        assert res[kind]["total_size"] > res[IndexKind.NOINDEX]["total_size"]
    # (b) Eager's read-modify-write dominates index I/O.
    assert res[IndexKind.EAGER]["index_writes"] > \
        2 * res[IndexKind.LAZY]["index_writes"]
    assert res[IndexKind.EAGER]["index_reads"] > \
        res[IndexKind.LAZY]["index_reads"]
    assert res[IndexKind.EMBEDDED]["index_writes"] == 0
    # (c) GET parity: every variant within 3x of the no-index baseline
    # (the paper reports sub-millisecond differences).
    baseline = res[IndexKind.NOINDEX]["get_us"]
    for kind in ALL_KINDS:
        assert res[kind]["get_us"] < baseline * 3 + 50
