"""An index advisor: Figure 2's strategy plus the Tables 3/5 cost model.

Given a workload description, recommend a secondary-index technique and
show the per-operation disk-access estimates behind the recommendation —
then verify the advice empirically by running the same workload against
every variant and comparing measured I/O.

Run with::

    python examples/index_advisor.py
"""

from repro import IndexKind, IndexSelector, SecondaryIndexedDB, WorkloadProfile
from repro.core.costmodel import CostModel
from repro.lsm.options import Options
from repro.workloads.generator import MixedWorkload
from repro.workloads.runner import WorkloadRunner
from repro.workloads.tweets import SeedProfile

SCENARIOS = {
    "social feed (read-mostly, top-10)": WorkloadProfile(
        put_fraction=0.20, get_fraction=0.70, lookup_fraction=0.10,
        typical_top_k=10),
    "analytics (group-by, no top-K limit)": WorkloadProfile(
        put_fraction=0.30, get_fraction=0.40, lookup_fraction=0.30,
        typical_top_k=None),
    "sensor logger (write-heavy, time-correlated)": WorkloadProfile(
        put_fraction=0.90, get_fraction=0.07, lookup_fraction=0.03,
        time_correlated=True),
    "mobile device (space-constrained)": WorkloadProfile(
        put_fraction=0.50, get_fraction=0.40, lookup_fraction=0.10,
        space_constrained=True),
}


def advise() -> None:
    selector = IndexSelector()
    model = CostModel(levels=4, level0_blocks=100,
                      avg_posting_list_length=30)
    print("=" * 72)
    for name, profile in SCENARIOS.items():
        recommendation = selector.recommend(profile)
        print(f"\n{name}")
        print(f"  -> {recommendation.kind.value.upper()}")
        for reason in recommendation.reasons:
            print(f"     {reason}")
        estimates = {
            kind.value: model.workload_cost(
                kind, profile.put_fraction, profile.get_fraction,
                profile.secondary_query_fraction,
                k_matched=profile.typical_top_k or 1000,
                time_correlated=profile.time_correlated)
            for kind in (IndexKind.EMBEDDED, IndexKind.EAGER,
                         IndexKind.LAZY, IndexKind.COMPOSITE)}
        ranked = sorted(estimates.items(), key=lambda item: item[1])
        print("     model estimate (disk accesses/op): "
              + ", ".join(f"{kind}={cost:.1f}" for kind, cost in ranked))


def verify_empirically() -> None:
    """Run one mixed workload against every variant; compare measured I/O."""
    print("\n" + "=" * 72)
    print("\nempirical check — 3000-op write-heavy mix, I/O blocks per "
          "variant:")
    options = Options(block_size=2048, sstable_target_size=16 * 1024,
                      memtable_budget=16 * 1024, l1_target_size=64 * 1024)
    for kind in (IndexKind.EMBEDDED, IndexKind.LAZY, IndexKind.COMPOSITE,
                 IndexKind.EAGER):
        workload = MixedWorkload(num_operations=3000,
                                 profile=SeedProfile(num_users=150), seed=3)
        db = SecondaryIndexedDB.open_memory(
            indexes={"UserID": kind}, options=options)
        report = WorkloadRunner(db, sample_every=3000).run(
            workload.operations())
        sample = report.samples[-1]
        total = (sample.primary_read_blocks + sample.primary_write_blocks
                 + sample.index_read_blocks + sample.index_write_blocks)
        print(f"  {kind.value:<10} total={total:>7,}  "
              f"index_writes={sample.index_write_blocks:>6,}  "
              f"mean={report.mean_micros():.0f}us/op")
        db.close()


if __name__ == "__main__":
    advise()
    verify_empirically()
