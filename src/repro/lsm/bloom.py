"""Bloom filters (Bloom, CACM 1970), LevelDB-flavoured.

The engine attaches one bloom filter per data block for primary keys (as
LevelDB does) and — the LevelDB++ extension of the paper's Section 3 — one
additional filter per block *per indexed secondary attribute*.

The implementation uses double hashing (Kirsch & Mitzenmacher): two 64-bit
hashes ``h1, h2`` simulate ``k`` independent hash functions as
``h1 + i*h2``.  The number of probes is derived from bits-per-key exactly as
in LevelDB: ``k = bits_per_key * ln 2``, clamped to [1, 30], which yields
the minimal false-positive rate ``2^(-(m/S) ln 2)`` of the paper's
Equation 1.
"""

from __future__ import annotations

import hashlib
import math
import struct

_U64 = struct.Struct("<QQ")


def _hash_pair(key: bytes) -> tuple[int, int]:
    """Two independent 64-bit hashes of ``key``.

    blake2b is seed-stable across processes (unlike ``hash()``), fast, and
    gives us 16 bytes in one call.
    """
    digest = hashlib.blake2b(key, digest_size=16).digest()
    return _U64.unpack(digest)


def optimal_num_probes(bits_per_key: float) -> int:
    """LevelDB's probe count: ``bits_per_key * ln 2`` clamped to [1, 30]."""
    k = int(round(bits_per_key * math.log(2)))
    return max(1, min(30, k))


def expected_false_positive_rate(bits_per_key: float) -> float:
    """Paper Equation 1 at the optimum: ``2 ** (-(m/S) * ln 2)``."""
    if bits_per_key <= 0:
        return 1.0
    return 2.0 ** (-bits_per_key * math.log(2))


class BloomFilterBuilder:
    """Accumulates keys, then emits a compact filter blob.

    Blob layout: ``bit_array || num_probes (1 byte)`` — the LevelDB filter
    policy format.  An empty key set produces an empty blob, which
    :func:`bloom_may_contain` treats as "definitely absent".
    """

    def __init__(self, bits_per_key: float) -> None:
        if bits_per_key <= 0:
            raise ValueError("bits_per_key must be positive")
        self.bits_per_key = bits_per_key
        self._hashes: list[tuple[int, int]] = []

    def add(self, key: bytes) -> None:
        self._hashes.append(_hash_pair(key))

    def __len__(self) -> int:
        return len(self._hashes)

    def finish(self) -> bytes:
        if not self._hashes:
            return b""
        nbits = max(64, int(len(self._hashes) * self.bits_per_key))
        nbytes = (nbits + 7) // 8
        nbits = nbytes * 8
        bits = bytearray(nbytes)
        num_probes = optimal_num_probes(self.bits_per_key)
        for h1, h2 in self._hashes:
            h = h1
            for _ in range(num_probes):
                pos = h % nbits
                bits[pos >> 3] |= 1 << (pos & 7)
                h = (h + h2) & 0xFFFFFFFFFFFFFFFF
        bits.append(num_probes)
        return bytes(bits)


def bloom_may_contain(filter_blob: bytes, key: bytes) -> bool:
    """Membership probe.  No false negatives; false-positive rate per Eq. 1."""
    if len(filter_blob) < 2:
        return False
    num_probes = filter_blob[-1]
    if num_probes > 30:
        # Reserved for future encodings; err on the safe side (LevelDB does
        # the same): claim presence so a corrupt filter never loses data.
        return True
    nbits = (len(filter_blob) - 1) * 8
    # _hash_pair, inlined: this probe runs once per (get, candidate block).
    h, h2 = _U64.unpack(hashlib.blake2b(key, digest_size=16).digest())
    for _ in range(num_probes):
        pos = h % nbits
        if not filter_blob[pos >> 3] & (1 << (pos & 7)):
            return False
        h = (h + h2) & 0xFFFFFFFFFFFFFFFF
    return True


def measured_false_positive_rate(
        filter_blob: bytes, absent_keys: list[bytes]) -> float:
    """Fraction of ``absent_keys`` the filter wrongly claims to contain."""
    if not absent_keys:
        return 0.0
    hits = sum(1 for key in absent_keys if bloom_may_contain(filter_blob, key))
    return hits / len(absent_keys)
