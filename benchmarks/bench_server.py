"""Server benchmark: multi-client load against ``repro serve``.

Measures what the serving layer's group-commit fan-in buys: N client
connections issue synchronous PUTs against one server; every in-flight
write rides the engine's leader/follower group commit, so one fsync (and
one WAL append) covers a whole batch of network writers.  Throughput
should *rise* with client count until the stall ladder pushes back —
the opposite of a lock-per-request server.  A plain script, not a
pytest module::

    PYTHONPATH=src python benchmarks/bench_server.py \
        [--scale full|ci] [--output FILE] [--check]

Per client count it reports ops/sec, put latency percentiles (p50/p99,
via the shared :class:`~repro.workloads.runner.LatencyRecorder`), and
the engine's group-commit gauges.  ``--check`` is the CI smoke gate:
under ``GATE_CLIENTS`` concurrent clients the batching ratio
(``group_commit_ops / write_groups``) must exceed
``BATCHING_RATIO_MIN``, and when the run includes a 32-client row it
must sustain ``SPEEDUP_MIN`` times the single-client write throughput.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.lsm.db import DB  # noqa: E402
from repro.lsm.options import Options  # noqa: E402
from repro.lsm.vfs import LocalVFS  # noqa: E402
from repro.server import Client, Server  # noqa: E402
from repro.workloads.runner import LatencyRecorder  # noqa: E402

SCHEMA = 1

#: CI fails when the batching ratio at ``GATE_CLIENTS`` does not beat this
#: (ratio 1.0 = every write group carried exactly one op = no batching).
BATCHING_RATIO_MIN = 1.0
GATE_CLIENTS = 8

#: A 32-client run must sustain this multiple of the single-client write
#: throughput (the acceptance bar for the serving layer).
SPEEDUP_MIN = 1.5

#: Best-of repeats: the run least disturbed by other tenants wins (same
#: spirit as ``bench_concurrent``; here highest throughput wins since the
#: gate is a throughput ratio).
REPEATS = 3

#: Real files + fsync on every commit: group commit has something to
#: amortize.  Geometry is roomier than ``bench_concurrent``'s — flushes
#: and compactions still happen at 32 clients, but the measured object is
#: the serving layer's fan-in, not the stall ladder (with a 16 KiB
#: memtable the 32-client run degenerates into back-to-back stalls and
#: the benchmark measures compaction instead).
ENGINE_OPTIONS = dict(
    sync_writes=True,
    background_compaction=True,
    block_size=2048,
    sstable_target_size=64 * 1024,
    memtable_budget=64 * 1024,
    l1_target_size=512 * 1024,
    compression="none",
)

SCALES = {
    "full": dict(client_counts=(1, 8, 32), ops_per_client=400),
    "ci": dict(client_counts=(1, 8), ops_per_client=150),
}

VALUE = b'{"UserID": "u%04d", "body": "' + b"x" * 72 + b'"}'


def _run_clients(host: str, port: int, clients: int,
                 ops_per_client: int) -> tuple[float, LatencyRecorder]:
    """Each client thread: its own connection, synchronous puts."""
    recorder = LatencyRecorder()
    barrier = threading.Barrier(clients + 1)
    failures: list[str] = []

    def client_main(cid: int) -> None:
        try:
            with Client(host, port, pool_size=1) as client:
                barrier.wait()
                for i in range(ops_per_client):
                    key = b"c%03d-%06d" % (cid, i)
                    started = time.perf_counter()
                    client.put(key, VALUE % (i % 97))
                    recorder.record(time.perf_counter() - started)
        except Exception as exc:  # noqa: BLE001 - reported, not lost
            failures.append(f"client {cid}: {exc!r}")

    threads = [threading.Thread(target=client_main, args=(cid,),
                                name=f"bench-client-{cid}")
               for cid in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if failures:
        raise RuntimeError(f"benchmark clients failed: {failures}")
    return wall, recorder


def _run_once(clients: int, ops_per_client: int) -> dict:
    """Fresh database + server per run so the gauges are this run's own."""
    workdir = tempfile.mkdtemp(prefix="bench-server-")
    db = DB.open(LocalVFS(workdir), "data", Options(**ENGINE_OPTIONS))
    server = Server(db)
    try:
        host, port = server.start()
        wall, recorder = _run_clients(host, port, clients, ops_per_client)
        pipeline = db.stats()["pipeline"]
        summary = recorder.summary_micros((0.5, 0.99))
        total_ops = clients * ops_per_client
        write_groups = max(1, pipeline["write_groups"])
        return {
            "clients": clients,
            "total_ops": total_ops,
            "wall_seconds": round(wall, 4),
            "ops_per_sec": round(total_ops / wall, 1),
            "put_mean_micros": round(summary["mean_micros"], 2),
            "put_p50_micros": round(summary["p50_micros"], 2),
            "put_p99_micros": round(summary["p99_micros"], 2),
            "batching_ratio": round(
                pipeline["group_commit_ops"] / write_groups, 3),
            "pipeline": {
                "write_groups": pipeline["write_groups"],
                "group_commit_batches": pipeline["group_commit_batches"],
                "group_commit_ops": pipeline["group_commit_ops"],
                "mean_group_batches": round(
                    pipeline["mean_group_batches"], 3),
                "max_group_batches": pipeline["max_group_batches"],
                "stall_events": pipeline["stall_events"],
                "slowdown_events": pipeline["slowdown_events"],
                "bg_flushes": pipeline["bg_flushes"],
                "bg_compactions": pipeline["bg_compactions"],
            },
            "server": {
                key: value for key, value in server.stats.as_dict().items()
                if key in ("connections_accepted", "requests",
                           "backpressure_waits")
            },
        }
    finally:
        server.close()
        db.close()
        shutil.rmtree(workdir, ignore_errors=True)


def run_point(clients: int, ops_per_client: int) -> dict:
    best = None
    for _ in range(REPEATS):
        result = _run_once(clients, ops_per_client)
        if best is None or result["ops_per_sec"] > best["ops_per_sec"]:
            best = result
    return best


def run_benchmark(scale: str) -> dict:
    cfg = SCALES[scale]
    points = [run_point(clients, cfg["ops_per_client"])
              for clients in cfg["client_counts"]]
    by_clients = {point["clients"]: point for point in points}
    single = by_clients.get(1)
    comparison = {}
    if single is not None:
        for point in points:
            if point["clients"] == 1:
                continue
            comparison[f"speedup_{point['clients']}_clients"] = round(
                point["ops_per_sec"] / single["ops_per_sec"], 3)
    return {
        "schema": SCHEMA,
        "harness": "benchmarks/bench_server.py",
        "scale": scale,
        "python": sys.version.split()[0],
        "points": points,
        "comparison": comparison,
    }


def check(report: dict) -> int:
    """CI gate: group commit must actually batch the network writers."""
    by_clients = {point["clients"]: point for point in report["points"]}
    failures = []
    gate_point = by_clients.get(GATE_CLIENTS)
    if gate_point is None:
        print(f"FAIL: no {GATE_CLIENTS}-client point in this run")
        return 1
    ratio = gate_point["batching_ratio"]
    status = "ok" if ratio > BATCHING_RATIO_MIN else "REGRESSED"
    print(f"  batching ratio @{GATE_CLIENTS:>3} clients {ratio:6.2f}   "
          f"(must be > {BATCHING_RATIO_MIN})  [{status}]")
    if ratio <= BATCHING_RATIO_MIN:
        failures.append("batching_ratio")
    speedup = report["comparison"].get("speedup_32_clients")
    if speedup is not None:
        status = "ok" if speedup >= SPEEDUP_MIN else "REGRESSED"
        print(f"  throughput 32/1 clients     {speedup:6.2f}x  "
              f"(must be >= {SPEEDUP_MIN})  [{status}]")
        if speedup < SPEEDUP_MIN:
            failures.append("speedup_32_clients")
    if failures:
        print(f"FAIL: serving layer lost its edge on {', '.join(failures)}")
        return 1
    print("server benchmark smoke: group-commit fan-in holds")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="full")
    parser.add_argument("--output", help="write the JSON report here")
    parser.add_argument("--check", action="store_true",
                        help="gate on batching ratio / speedup (CI mode)")
    args = parser.parse_args(argv)

    report = run_benchmark(args.scale)
    print(json.dumps(report, indent=2))

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        return check(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
