"""Manifest: the durable log of version edits.

The manifest reuses the WAL record format; each record is one serialized
:class:`~repro.lsm.version.VersionEdit`.  A ``CURRENT`` file names the
active manifest, and recovery replays every edit in order to rebuild the
:class:`~repro.lsm.version.VersionSet` — the same two-file scheme LevelDB
uses.
"""

from __future__ import annotations

from repro.lsm.errors import CorruptionError
from repro.lsm.vfs import VFS, Category
from repro.lsm.version import VersionEdit, VersionSet
from repro.lsm.wal import LogReader, LogWriter


def manifest_file_name(db_name: str, number: int) -> str:
    return f"{db_name}/MANIFEST-{number:06d}"


def current_file_name(db_name: str) -> str:
    return f"{db_name}/CURRENT"


def current_tmp_file_name(db_name: str) -> str:
    """Scratch file for atomic CURRENT installation (may survive a crash)."""
    return f"{db_name}/CURRENT.tmp"


def table_file_name(db_name: str, number: int) -> str:
    return f"{db_name}/{number:06d}.ldb"


def log_file_name(db_name: str, number: int) -> str:
    return f"{db_name}/{number:06d}.log"


class ManifestWriter:
    """Appends version edits to the active manifest."""

    def __init__(self, vfs: VFS, db_name: str, number: int) -> None:
        self.vfs = vfs
        self.db_name = db_name
        self.number = number
        self._file = vfs.create(manifest_file_name(db_name, number))
        self._log = LogWriter(self._file)

    def log_edit(self, edit: VersionEdit) -> None:
        self._log.add_record(edit.encode())
        # Version edits record which files exist; losing one to a crash
        # would orphan live tables (and recovery would then delete them as
        # garbage).  LevelDB syncs the manifest on every LogAndApply; so
        # do we — edits are rare (per flush/compaction) and tiny.
        self._file.sync()

    @property
    def size(self) -> int:
        return self._file.size

    def install_as_current(self) -> None:
        """Atomically point ``CURRENT`` at this manifest.

        The new content is written (and synced) to ``CURRENT.tmp`` first,
        then renamed over ``CURRENT``, so a crash leaves either the old or
        the new pointer — never a torn one.  A crash between the two steps
        strands ``CURRENT.tmp``; recovery deletes it
        (:meth:`repro.lsm.db.DB._delete_obsolete_files`).
        """
        tmp = current_tmp_file_name(self.db_name)
        self.vfs.write_whole(
            tmp, f"MANIFEST-{self.number:06d}\n".encode("utf-8"),
            Category.MANIFEST)
        self.vfs.rename(tmp, current_file_name(self.db_name))

    def close(self) -> None:
        self._log.close()


def read_current_manifest_number(vfs: VFS, db_name: str) -> int | None:
    """Manifest number named by ``CURRENT``, or ``None`` for a fresh DB."""
    name = current_file_name(db_name)
    if not vfs.exists(name):
        return None
    content = vfs.read_whole(name, Category.MANIFEST).decode("utf-8").strip()
    if not content.startswith("MANIFEST-"):
        raise CorruptionError(f"malformed CURRENT file: {content!r}")
    try:
        return int(content[len("MANIFEST-"):])
    except ValueError as exc:
        raise CorruptionError(f"malformed CURRENT file: {content!r}") from exc


def recover_version_set(vfs: VFS, db_name: str,
                        version_set: VersionSet) -> bool:
    """Replay the current manifest into ``version_set``.

    Returns True if a manifest existed (the DB is being reopened), False
    for a fresh database.
    """
    number = read_current_manifest_number(vfs, db_name)
    if number is None:
        return False
    reader = LogReader(vfs.open_random(manifest_file_name(db_name, number)))
    for payload in reader:
        version_set.apply(VersionEdit.decode(payload))
    return True
