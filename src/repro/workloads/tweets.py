"""Synthetic tweet generator modelled on the paper's seed dataset.

The paper collected 8 million geotagged NY tweets over three weeks and then
*synthesised* arbitrarily large datasets from that seed, preserving its
attribute-value distributions (Section 5.1).  The relevant seed statistics
they report:

* UserID rank-frequency follows a power law (Figure 7) with an average of
  30 tweets per user;
* tweets arrive at ~35 tweets/second on average, with the synthetic
  generator drawing per-second rates from ``Uniform(0, 2 * avg)`` — which
  makes **CreationTime time-correlated** (monotone in insertion order);
* tweet bodies average ~550 bytes.

:class:`SeedProfile` captures those statistics; :class:`TweetGenerator`
draws synthetic tweets from them deterministically (seeded RNG).
"""

from __future__ import annotations

import bisect
import random
import string
from dataclasses import dataclass
from typing import Iterator

from repro.core.records import Document


@dataclass(frozen=True)
class SeedProfile:
    """Distribution parameters distilled from the paper's seed dataset.

    ``zipf_exponent`` shapes the UserID rank-frequency curve; 1.0 gives the
    classic straight line on the paper's log-log Figure 7.  ``body_length``
    parameters mimic the role of the ~550-byte tweet bodies: they pad each
    record so a realistic number of records fits per data block ("to make
    the experiments more realistic, in terms of number of records that can
    fit in a primary table block").
    """

    num_users: int = 1000
    zipf_exponent: float = 1.0
    avg_tweets_per_second: float = 35.0
    body_length_min: int = 40
    body_length_max: int = 160
    start_timestamp: int = 1_500_000_000  # epoch seconds, paper-era

    def user_weights(self) -> list[float]:
        """Unnormalised Zipf weights per user rank (rank 1 = heaviest)."""
        return [1.0 / (rank ** self.zipf_exponent)
                for rank in range(1, self.num_users + 1)]


class TweetGenerator:
    """Deterministic stream of synthetic tweets.

    Each tweet is a document shaped like the paper's worked examples::

        {"UserID": "u0042", "CreationTime": 1500000123, "Body": "..."}

    keyed by a monotonically increasing TweetID — which, like the real
    thing, makes the primary key itself time-correlated.
    """

    def __init__(self, profile: SeedProfile | None = None,
                 seed: int = 2018) -> None:
        self.profile = profile or SeedProfile()
        self._rng = random.Random(seed)
        weights = self.profile.user_weights()
        self._cumulative: list[float] = []
        total = 0.0
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total_weight = total
        self._next_id = 0
        self._clock = float(self.profile.start_timestamp)
        self._second_budget = self._draw_rate()

    def _draw_rate(self) -> float:
        """Tweets emitted in the current second: ``Uniform(0, 2 * avg)``."""
        return self._rng.uniform(0.0, 2.0 * self.profile.avg_tweets_per_second)

    def _draw_user(self) -> str:
        point = self._rng.random() * self._total_weight
        rank = bisect.bisect_left(self._cumulative, point)
        return f"u{rank:05d}"

    def _draw_body(self) -> str:
        length = self._rng.randint(self.profile.body_length_min,
                                   self.profile.body_length_max)
        return "".join(self._rng.choices(string.ascii_lowercase + " ",
                                         k=length))

    def _advance_clock(self) -> int:
        self._second_budget -= 1.0
        while self._second_budget <= 0.0:
            self._clock += 1.0
            self._second_budget += self._draw_rate()
        return int(self._clock)

    def next_tweet(self) -> tuple[str, Document]:
        """One ``(tweet_id, document)`` pair; ids and times are monotone."""
        tweet_id = f"t{self._next_id:010d}"
        self._next_id += 1
        document = {
            "UserID": self._draw_user(),
            "CreationTime": self._advance_clock(),
            "Body": self._draw_body(),
        }
        return tweet_id, document

    def tweets(self, count: int) -> Iterator[tuple[str, Document]]:
        for _ in range(count):
            yield self.next_tweet()

    def existing_ids(self) -> int:
        """How many tweet ids have been handed out so far."""
        return self._next_id


def rank_frequency(documents: list[Document],
                   attribute: str = "UserID") -> list[tuple[int, int]]:
    """Figure 7's data: ``(rank, frequency)`` pairs, rank 1 = most frequent."""
    counts: dict[object, int] = {}
    for document in documents:
        value = document.get(attribute)
        if value is not None:
            counts[value] = counts.get(value, 0) + 1
    ordered = sorted(counts.values(), reverse=True)
    return [(rank + 1, frequency) for rank, frequency in enumerate(ordered)]
