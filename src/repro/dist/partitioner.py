"""Partitioners: deciding which shard owns a key.

*Hash* partitioning (stable blake2b modulo a fixed shard count) is what
the paper's referenced systems use for primary keys (DynamoDB, Riak,
Cassandra) and for global-index partition keys (DynamoDB GSIs) — perfect
balance, but value ranges scatter across every shard.

*Range* partitioning (HBase/Spanner style: sorted split points) keeps
adjacent values on the same shard, so a global index partitioned by range
can answer RANGELOOKUPs from only the overlapping shards — at the price
of hand-chosen (or rebalanced) boundaries and skew exposure.

*Split-hash* partitioning (:class:`SplitHashRing`) is the elastic variant
the migration machinery needs: it starts bit-identical to
:class:`HashPartitioner` and grows one shard at a time, linear-hashing
style — each split moves a pseudo-random *half* of one shard's keys to a
brand-new shard and leaves every other shard's ownership untouched, so a
live migration only ever copies one shard's data.
"""

from __future__ import annotations

import bisect
import hashlib


class HashPartitioner:
    """Stable hash partitioning of byte keys over ``num_shards`` shards."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    def shard_of(self, key: bytes) -> int:
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.num_shards

    def shards_overlapping(self, low: bytes, high: bytes) -> list[int]:
        """Hashing scatters ranges: every shard may hold in-range keys."""
        return list(range(self.num_shards))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashPartitioner(num_shards={self.num_shards})"


class SplitHashRing:
    """An elastic hash ring: ``HashPartitioner`` plus linear-hash splits.

    With no splits, :meth:`shard_of` is bit-identical to
    ``HashPartitioner(base_shards).shard_of`` — the default cluster routing
    is unchanged until the first migration.  ``with_split(parent, new_id)``
    returns a *new* ring (instances are immutable, so a cluster can flip
    from old ring to new ring with one atomic attribute assignment) in
    which roughly half of ``parent``'s keys — chosen by one bit of a
    second, domain-separated digest per split depth — now route to
    ``new_id``.  Keys owned by other shards are never remapped.

    Split decisions consume bit ``depth`` of the secondary digest, so a
    shard split twice partitions its keyspace into quarters, exactly like
    classic linear hashing's directory doubling but one bucket at a time.
    """

    _PERSON = b"repro-reshard"

    def __init__(self, base_shards: int,
                 splits: tuple[tuple[int, int], ...] = ()) -> None:
        if base_shards < 1:
            raise ValueError("base_shards must be >= 1")
        self.base_shards = base_shards
        self.splits = tuple(splits)
        # leaf shard id -> split depth; a key's route walks depths 0..d.
        leaf_depth: dict[int, int] = {
            shard_id: 0 for shard_id in range(base_shards)}
        # (shard id, depth) -> new shard id taking the set-bit half.
        split_at: dict[tuple[int, int], int] = {}
        for parent, new_id in self.splits:
            if parent not in leaf_depth:
                raise ValueError(f"split parent {parent} is not a shard")
            if new_id in leaf_depth:
                raise ValueError(f"split target {new_id} already exists")
            depth = leaf_depth[parent]
            split_at[(parent, depth)] = new_id
            leaf_depth[parent] = depth + 1
            leaf_depth[new_id] = depth + 1
        self._split_at = split_at
        self._leaf_depth = leaf_depth
        self.num_shards = base_shards + len(self.splits)

    def shard_of(self, key: bytes) -> int:
        digest = hashlib.blake2b(key, digest_size=8).digest()
        shard_id = int.from_bytes(digest, "big") % self.base_shards
        depth = 0
        route_bits: int | None = None
        while (shard_id, depth) in self._split_at:
            if route_bits is None:
                second = hashlib.blake2b(key, digest_size=8,
                                         person=self._PERSON).digest()
                route_bits = int.from_bytes(second, "big")
            if (route_bits >> depth) & 1:
                shard_id = self._split_at[(shard_id, depth)]
            depth += 1
        return shard_id

    def with_split(self, parent: int, new_id: int) -> "SplitHashRing":
        """A new ring in which ``parent`` has shed half its keys to
        ``new_id``; validation happens in the constructor."""
        return SplitHashRing(self.base_shards,
                             self.splits + ((parent, new_id),))

    def state(self) -> dict:
        """The ring as plain data — what the cluster manifest persists."""
        return {"base_shards": self.base_shards,
                "splits": [list(pair) for pair in self.splits]}

    @classmethod
    def from_state(cls, base_shards: int,
                   splits: "tuple[tuple[int, int], ...] | list" = ()
                   ) -> "SplitHashRing":
        """Rebuild a ring from persisted state (validates in __init__)."""
        return cls(base_shards,
                   tuple((int(parent), int(new_id))
                         for parent, new_id in splits))

    def shards_overlapping(self, low: bytes, high: bytes) -> list[int]:
        """Hashing scatters ranges: every shard may hold in-range keys."""
        return list(range(self.num_shards))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SplitHashRing(base_shards={self.base_shards}, "
                f"splits={self.splits})")


class RangePartitioner:
    """Split-point partitioning: shard *i* owns ``[splits[i-1], splits[i])``.

    ``split_points`` must be sorted encoded byte keys; ``len(splits) + 1``
    shards result.  Keys below the first split go to shard 0, keys at or
    above the last to the final shard.
    """

    def __init__(self, split_points: list[bytes]) -> None:
        if sorted(split_points) != list(split_points):
            raise ValueError("split points must be sorted")
        if len(set(split_points)) != len(split_points):
            raise ValueError("split points must be distinct")
        self.split_points = list(split_points)
        self.num_shards = len(split_points) + 1

    def shard_of(self, key: bytes) -> int:
        return bisect.bisect_right(self.split_points, key)

    def shards_overlapping(self, low: bytes, high: bytes) -> list[int]:
        """Only the shards whose intervals intersect ``[low, high]``."""
        if low > high:
            return []
        first = self.shard_of(low)
        last = self.shard_of(high)
        return list(range(first, last + 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangePartitioner(num_shards={self.num_shards})"
