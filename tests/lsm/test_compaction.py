"""Compaction: level migration, version dropping, tombstone elision,
merge folding, round-robin file choice."""

import json

from repro.lsm.db import DB
from repro.lsm.keys import KIND_MERGE, KIND_VALUE
from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS


def _options(**overrides):
    base = dict(block_size=512, sstable_target_size=2 * 1024,
                memtable_budget=2 * 1024, l1_target_size=8 * 1024,
                compression="none")
    base.update(overrides)
    trigger = base.get("l0_compaction_trigger", 4)
    base.setdefault("l0_stop_writes_trigger", max(12, trigger * 3))
    return Options(**base)


def _union(key, operands):
    merged = []
    for operand in operands:
        merged.extend(json.loads(operand))
    return json.dumps(merged).encode()


def _fill(db, count, prefix="k", size=60, start=0):
    for i in range(start, start + count):
        db.put(f"{prefix}{i:05d}".encode(), b"v" * size)


class TestLevelMigration:
    def test_data_flows_to_deeper_levels(self):
        db = DB.open_memory(_options())
        _fill(db, 1500)
        counts = db.level_file_counts()
        assert sum(counts) > 0
        assert any(counts[level] > 0 for level in range(1, len(counts)))
        assert db.compactor.stats.compaction_count > 0
        db.close()

    def test_no_data_loss_across_compactions(self):
        db = DB.open_memory(_options())
        _fill(db, 1200)
        db.compact_range()
        for i in range(0, 1200, 97):
            assert db.get(f"k{i:05d}".encode()) == b"v" * 60
        assert len(dict(db.scan())) == 1200
        db.close()

    def test_obsolete_versions_dropped(self):
        db = DB.open_memory(_options())
        for _round in range(8):
            _fill(db, 200, size=80)  # overwrite the same 200 keys
        db.compact_range()
        deepest = db.versions.current.deepest_nonempty_level()
        entries = sum(meta.num_entries
                      for level, meta in db.versions.current.all_files())
        assert entries == 200  # one surviving version per key
        assert deepest >= 1
        db.close()

    def test_input_files_deleted_from_disk(self):
        vfs = MemoryVFS()
        db = DB.open(vfs, "db", _options())
        _fill(db, 1200)
        db.compact_range()
        live = db.versions.live_file_numbers()
        on_disk = {int(name.rsplit("/", 1)[-1].split(".")[0])
                   for name in vfs.list_dir("db/") if name.endswith(".ldb")}
        assert on_disk == live
        db.close()


class TestTombstones:
    def test_tombstone_elided_at_base_level(self):
        db = DB.open_memory(_options())
        _fill(db, 300)
        db.compact_range()
        for i in range(300):
            db.delete(f"k{i:05d}".encode())
        db.compact_range()
        db.compact_range()  # push tombstones all the way down
        entries = sum(meta.num_entries
                      for _level, meta in db.versions.current.all_files())
        assert entries == 0
        assert dict(db.scan()) == {}
        db.close()

    def test_tombstone_kept_while_deeper_data_exists(self):
        db = DB.open_memory(_options(l0_compaction_trigger=100))
        _fill(db, 600)
        db.compact_range()  # data now deep
        db.delete(b"k00000")
        db.flush()
        # Only L0 holds the tombstone; no compaction has merged it yet.
        assert db.get(b"k00000") is None
        db.close()


class TestMergeFolding:
    def test_fragments_folded_during_compaction(self):
        db = DB.open_memory(_options(merge_operator=_union))
        for i in range(600):
            db.merge(f"list{i % 5}".encode(), json.dumps([i]).encode())
        db.compact_range()
        assert db.compactor.stats.merges_folded > 0
        # After full compaction each key should be a single folded entry.
        deepest = db.versions.current.deepest_nonempty_level()
        kinds = {ikey.kind for ikey, _v in db.scan_level(deepest)}
        assert kinds == {KIND_VALUE}
        for j in range(5):
            got = json.loads(db.get(f"list{j}".encode()))
            assert got == [i for i in range(600) if i % 5 == j]
        db.close()

    def test_partial_merge_keeps_merge_kind(self):
        """Folding without a visible base must stay a merge operand unless
        the output level is the key's base level."""
        db = DB.open_memory(_options(merge_operator=_union,
                                     l0_compaction_trigger=2))
        # Put a base value deep first.
        db.put(b"list", json.dumps([0]).encode())
        for i in range(400):
            db.put(f"fill{i:05d}".encode(), b"x" * 80)
        # Now shower merge operands; compactions will fold some of them
        # while the base is still deeper.
        for i in range(1, 300):
            db.merge(b"list", json.dumps([i]).encode())
            if i % 40 == 0:
                db.flush()
        assert json.loads(db.get(b"list")) == list(range(300))
        db.compact_range()
        assert json.loads(db.get(b"list")) == list(range(300))
        db.close()

    def test_merge_with_snapshot_is_conservative(self):
        db = DB.open_memory(_options(merge_operator=_union))
        db.merge(b"k", b"[1]")
        snap = db.snapshot()
        db.merge(b"k", b"[2]")
        db.compact_range()
        assert json.loads(db.get(b"k")) == [1, 2]
        assert json.loads(db.get(b"k", snap)) == [1]
        snap.release()
        db.close()


class TestRoundRobinPointer:
    def test_compact_pointer_advances(self):
        db = DB.open_memory(_options())
        _fill(db, 3000)
        pointers = [p for p in db.versions.compact_pointers if p is not None]
        assert pointers, "compactions must record their upper bounds"
        db.close()

    def test_stats_by_level(self):
        db = DB.open_memory(_options())
        _fill(db, 2000)
        stats = db.compactor.stats
        assert stats.flush_count > 0
        assert stats.bytes_flushed > 0
        assert 0 in stats.compactions_by_level
        assert stats.bytes_compacted_in > 0
        assert stats.bytes_compacted_out > 0
        db.close()


class TestSnapshotsSurviveCompaction:
    def test_old_version_pinned_by_snapshot(self):
        db = DB.open_memory(_options())
        db.put(b"pinned", b"v1")
        snap = db.snapshot()
        db.put(b"pinned", b"v2")
        _fill(db, 800)
        db.compact_range()
        assert db.get(b"pinned") == b"v2"
        assert db.get(b"pinned", snap) == b"v1"
        snap.release()
        db.compact_range()
        assert db.get(b"pinned") == b"v2"
        db.close()
