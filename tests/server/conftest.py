"""Shared setup for the server suite.

A wedged socket (lost wakeup, reader/worker deadlock, server that never
answers) must not hang the whole run.  Same dependency-free watchdog as
the concurrency suite: ``faulthandler.dump_traceback_later`` arms around
every test, so a hang dumps every thread's stack and kills the process.
"""

from __future__ import annotations

import faulthandler

import pytest

WATCHDOG_SECONDS = 120.0


@pytest.fixture(autouse=True)
def hang_watchdog():
    faulthandler.dump_traceback_later(WATCHDOG_SECONDS, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()
