"""Kill the server mid-write; acked writes must survive the restart.

The serving layer's durability contract is end-to-end: a client that got
an OK response holds a write that survives power loss, because with
``sync_writes=True`` the response is only sent after the group commit's
fsync.  The drill runs real clients against a server whose VFS blows a
fuse mid-run (:class:`FaultInjectingVFS`), takes the post-crash disk
image, reopens it, and audits: every acked write present, nothing
phantom, integrity clean.
"""

from __future__ import annotations

import contextlib
import threading

from repro.lsm.db import DB
from repro.lsm.faults import FaultInjectingVFS
from repro.lsm.options import Options
from repro.server import Client, RemoteError, Server

CLIENTS = 4
OPS_PER_CLIENT = 30


def _run_drill(at_op: int):
    """Returns (vfs, acked, server_survived)."""
    vfs = FaultInjectingVFS()
    opts = Options(background_compaction=True, sync_writes=True,
                   memtable_budget=4096, l0_compaction_trigger=2)
    db = DB.open(vfs, "db", opts)
    # Arm the fuse only once the server is the one mutating the disk:
    # ``at_op`` counts mutating ops from the start of serving.
    vfs.schedule_crash(vfs.op_count + at_op)
    server = Server(db)
    host, port = server.start()

    acked: list[tuple[bytes, bytes]] = []
    acked_lock = threading.Lock()

    def client_main(cid: int) -> None:
        with contextlib.suppress(OSError):
            with Client(host, port, pool_size=1) as client:
                for i in range(OPS_PER_CLIENT):
                    key = b"f%d-%03d" % (cid, i)
                    value = b"v%d-%03d" % (cid, i)
                    try:
                        client.put(key, value)
                    except RemoteError:
                        # The engine hit the fuse: from here on writes
                        # fail, but each failure is a clean error
                        # response — never a silent half-ack.
                        continue
                    with acked_lock:
                        acked.append((key, value))

    threads = [threading.Thread(target=client_main, args=(cid,))
               for cid in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "client wedged after the crash"

    # The *server* must survive the engine's death: still answering.
    survived = True
    try:
        with Client(host, port, pool_size=1, timeout=10) as probe:
            probe.stats()
    except (OSError, RemoteError):
        survived = False

    server.close()
    with contextlib.suppress(Exception):
        db.close()
    return vfs, acked, survived


def _check_restart(vfs, acked):
    image = vfs.crash_image("drop")
    db = DB.open(image, "db", Options())
    try:
        report = db.verify_integrity()
        assert report.ok, report
        recovered = dict(db.scan())
    finally:
        db.close()
    for key, value in acked:
        assert recovered.get(key) == value, f"lost acked write {key!r}"
    for key, value in recovered.items():
        cid, i = key.decode().lstrip("f").split("-")
        assert value == b"v%d-%03d" % (int(cid), int(i)), \
            f"phantom data {key!r}"


def test_acked_writes_survive_kill_mid_write():
    crashed_runs = 0
    for at_op in (5, 17, 40, 90, 160):
        vfs, acked, survived = _run_drill(at_op)
        assert survived, f"server died with the engine (at_op={at_op})"
        if vfs.crashed:
            crashed_runs += 1
            assert len(acked) < CLIENTS * OPS_PER_CLIENT
        else:
            assert len(acked) == CLIENTS * OPS_PER_CLIENT
        _check_restart(vfs, acked)
    assert crashed_runs >= 3, "fuse lengths need retuning"


def test_no_acks_after_crash():
    """Once the fuse blows, no later write is ever acked (no false
    durability promises from a dying engine)."""
    vfs, acked, _survived = _run_drill(at_op=10)
    assert vfs.crashed
    image = vfs.crash_image("drop")
    db = DB.open(image, "db", Options())
    try:
        recovered = dict(db.scan())
    finally:
        db.close()
    assert set(key for key, _v in acked) <= set(recovered)
