"""Write-ahead log, in LevelDB's record format.

The log is a sequence of 32 KiB blocks.  A record never spans a block
boundary in one piece: it is split into FULL or FIRST/MIDDLE.../LAST
fragments, each carrying its own CRC so torn writes at the tail are detected
and recovery stops cleanly at the last complete record::

    fragment := crc32 (4, LE) | length (2, LE) | type (1) | payload

Payloads here are serialized write batches (see :mod:`repro.lsm.db`); the
WAL itself is payload-agnostic.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator

from repro.lsm.errors import CorruptionError
from repro.lsm.vfs import Category, RandomAccessFile, WritableFile

BLOCK_SIZE = 32 * 1024
_HEADER = struct.Struct("<IHB")
HEADER_SIZE = _HEADER.size

_FULL = 1
_FIRST = 2
_MIDDLE = 3
_LAST = 4


class LogWriter:
    """Appends records to a WAL file."""

    def __init__(self, file: WritableFile, sync: bool = False) -> None:
        self._file = file
        self._sync = sync
        self._block_offset = file.size % BLOCK_SIZE

    def add_record(self, payload: bytes) -> None:
        remaining = payload
        first_fragment = True
        while True:
            leftover = BLOCK_SIZE - self._block_offset
            if leftover < HEADER_SIZE:
                # Pad the block tail; a header can't fit.
                if leftover:
                    self._file.append(b"\x00" * leftover, Category.WAL)
                self._block_offset = 0
                leftover = BLOCK_SIZE
            available = leftover - HEADER_SIZE
            fragment, remaining = remaining[:available], remaining[available:]
            if first_fragment and not remaining:
                record_type = _FULL
            elif first_fragment:
                record_type = _FIRST
            elif not remaining:
                record_type = _LAST
            else:
                record_type = _MIDDLE
            self._emit(record_type, fragment)
            first_fragment = False
            if not remaining:
                break
        if self._sync:
            self._file.sync()

    def _emit(self, record_type: int, fragment: bytes) -> None:
        crc = zlib.crc32(bytes([record_type]) + fragment) & 0xFFFFFFFF
        header = _HEADER.pack(crc, len(fragment), record_type)
        self._file.append(header + fragment, Category.WAL)
        self._block_offset += HEADER_SIZE + len(fragment)

    def add_records(self, payloads: list[bytes]) -> None:
        """Append several records, syncing (at most) once at the end.

        This is the group-commit primitive: the write-group leader encodes
        every queued batch, appends them back to back, and all writers in
        the group share a single ``fsync`` instead of paying one each.  The
        byte layout is identical to the same ``add_record`` calls made one
        at a time.
        """
        sync = self._sync
        self._sync = False
        try:
            for payload in payloads:
                self.add_record(payload)
        finally:
            self._sync = sync
        if sync:
            self._file.sync()

    def sync(self) -> None:
        """Force written records to stable storage."""
        self._file.sync()

    def close(self) -> None:
        self._file.close()


class LogReader:
    """Replays records from a WAL file.

    Recovery semantics match LevelDB's default: a checksum mismatch or a
    truncated fragment at the tail ends iteration silently (the tail was a
    torn write); a mismatch in the middle raises
    :class:`~repro.lsm.errors.CorruptionError`.
    """

    def __init__(self, file: RandomAccessFile) -> None:
        self._data = file.read_at(0, file.size, Category.WAL)

    def __iter__(self) -> Iterator[bytes]:
        offset = 0
        pending: bytearray | None = None
        data = self._data
        end = len(data)
        while offset < end:
            block_left = BLOCK_SIZE - (offset % BLOCK_SIZE)
            if block_left < HEADER_SIZE:
                offset += block_left  # block-tail padding
                continue
            if offset + HEADER_SIZE > end:
                return  # torn header at tail
            crc, length, record_type = _HEADER.unpack_from(data, offset)
            if record_type == 0 and length == 0 and crc == 0:
                # Zero padding (pre-allocated or zero-filled region).
                offset += block_left
                continue
            frag_start = offset + HEADER_SIZE
            frag_end = frag_start + length
            if HEADER_SIZE + length > block_left:
                # A fragment never spans a block boundary by construction,
                # so this header's length field is garbage.  At the tail it
                # is a torn write; mid-file it is corruption.
                if frag_end >= end:
                    return
                raise CorruptionError(
                    f"WAL fragment at offset {offset} crosses a block "
                    f"boundary")
            if frag_end > end:
                return  # torn payload at tail
            fragment = data[frag_start:frag_end]
            actual = zlib.crc32(bytes([record_type]) + fragment) & 0xFFFFFFFF
            if actual != crc:
                if frag_end >= end:
                    return  # torn write at tail
                raise CorruptionError(
                    f"WAL checksum mismatch at offset {offset}")
            offset = frag_end
            if record_type == _FULL:
                if pending is not None:
                    raise CorruptionError("FULL record inside fragmented record")
                yield bytes(fragment)
            elif record_type == _FIRST:
                if pending is not None:
                    raise CorruptionError("FIRST record inside fragmented record")
                pending = bytearray(fragment)
            elif record_type == _MIDDLE:
                if pending is None:
                    raise CorruptionError("MIDDLE record without FIRST")
                pending += fragment
            elif record_type == _LAST:
                if pending is None:
                    raise CorruptionError("LAST record without FIRST")
                pending += fragment
                yield bytes(pending)
                pending = None
            else:
                raise CorruptionError(f"unknown WAL record type {record_type}")
