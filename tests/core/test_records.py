"""Record model codecs."""

import pytest

from repro.core.records import (
    attribute_of,
    decode_document,
    encode_document,
    key_to_bytes,
    key_to_str,
)
from repro.lsm.errors import InvalidArgumentError


class TestKeys:
    def test_str_roundtrip(self):
        assert key_to_str(key_to_bytes("tweet-42")) == "tweet-42"

    def test_bytes_passthrough(self):
        assert key_to_bytes(b"raw") == b"raw"

    def test_unicode(self):
        assert key_to_str(key_to_bytes("ключ")) == "ключ"

    def test_invalid_type(self):
        with pytest.raises(InvalidArgumentError):
            key_to_bytes(42)

    def test_undecodable_bytes_replaced(self):
        assert "�" in key_to_str(b"\xff\xfe")


class TestDocuments:
    def test_roundtrip(self):
        doc = {"UserID": "u1", "CreationTime": 123, "nested": {"a": [1, 2]}}
        assert decode_document(encode_document(doc)) == doc

    def test_compact_encoding(self):
        assert encode_document({"a": 1}) == b'{"a":1}'

    def test_non_dict_rejected_on_encode(self):
        with pytest.raises(InvalidArgumentError):
            encode_document(["not", "a", "dict"])

    def test_non_object_rejected_on_decode(self):
        with pytest.raises(InvalidArgumentError):
            decode_document(b"[1, 2]")

    def test_attribute_of(self):
        doc = {"UserID": "u1", "nullish": None}
        assert attribute_of(doc, "UserID") == "u1"
        assert attribute_of(doc, "missing") is None
        assert attribute_of(doc, "nullish") is None
