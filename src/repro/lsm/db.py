"""The database: LevelDB's public surface, plus the probes LevelDB++ needs.

:class:`DB` wires together the MemTable, WAL, SSTables, versioned manifest
and compactor into a single-node key-value store with the three base
operations of the paper's Table 1 — ``PUT(k, v)``, ``GET(k)``, ``DEL(k)`` —
plus:

* ``merge(k, operand)``: RocksDB-style merge writes, the mechanism behind
  the Lazy index's append-only posting-list updates;
* ``scan(lo, hi)``: user-visible range iteration (the "range query API on
  primary key" the Eager index uses for RANGELOOKUP);
* ``scan_level`` / ``fragments_by_level``: raw per-level access, which the
  Lazy and Composite indexes need for level-at-a-time traversal;
* ``key_maybe_in_levels``: the in-memory presence probe behind the
  Embedded index's GetLite validity check.

By default, writes are synchronous and single-threaded (the paper chose
LevelDB for exactly this property, to isolate index costs); a MemTable
flush and any due compactions run inline in the writing call.

With ``options.background_compaction`` the engine instead runs LevelDB's
background maintenance pipeline (DESIGN.md §8): the full MemTable seals
into an *immutable* MemTable that a dedicated compactor thread flushes
while a fresh MemTable absorbs writes; compactions run on the same
thread; concurrent writers queue behind a leader that appends and syncs
all their WAL batches at once (group commit); level-0 pileups slow and
then stop writers (backpressure waits instead of
:class:`~repro.lsm.errors.WriteStallError`); and readers pin a
``(MemTable, immutable MemTable, Version)`` triple plus the published
sequence number, so every read observes a consistent snapshot without
holding the mutex.
"""

from __future__ import annotations

import errno
import heapq
import logging
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Callable, Iterator

from repro.lsm.compaction import Compaction, Compactor, pick_compaction
from repro.lsm.errors import (
    CorruptionError,
    DBClosedError,
    InvalidArgumentError,
    ReadOnlyError,
)
from repro.lsm.iterator import merge_streams
from repro.lsm.keys import (
    KIND_DELETE,
    KIND_FOR_SEEK,
    KIND_MERGE,
    KIND_VALUE,
    InternalKey,
    MAX_SEQUENCE,
    decode_length_prefixed,
    decode_varint,
    encode_length_prefixed,
    encode_varint,
    pack_internal_key,
)
from repro.lsm.manifest import (
    ManifestWriter,
    current_tmp_file_name,
    log_file_name,
    recover_version_set,
    table_file_name,
)
from repro.lsm.memtable import MemTable
from repro.lsm.options import Options
from repro.lsm.tablecache import TableCache
from repro.lsm.vfs import Category, MemoryVFS, VFS
from repro.lsm.version import VersionEdit, VersionSet
from repro.lsm.wal import LogReader, LogWriter

FlushListener = Callable[[int], None]

logger = logging.getLogger(__name__)


def _parse_file_number(base: str) -> int | None:
    """File number encoded in a ``NNNNNN.ldb``/``NNNNNN.log`` basename.

    Returns ``None`` for names the engine did not produce (editor
    droppings, half-renamed scratch files): recovery must tolerate them,
    not crash on them.
    """
    stem = base.split(".")[0]
    return int(stem) if stem.isdigit() else None


class WriteBatch:
    """An atomic group of writes, applied under consecutive sequence numbers."""

    def __init__(self) -> None:
        self.ops: list[tuple[int, bytes, bytes]] = []

    def put(self, key: bytes, value: bytes) -> "WriteBatch":
        self.ops.append((KIND_VALUE, key, value))
        return self

    def delete(self, key: bytes) -> "WriteBatch":
        self.ops.append((KIND_DELETE, key, b""))
        return self

    def merge(self, key: bytes, operand: bytes) -> "WriteBatch":
        self.ops.append((KIND_MERGE, key, operand))
        return self

    def __len__(self) -> int:
        return len(self.ops)

    def encode(self, start_seq: int) -> bytes:
        out = bytearray(encode_varint(start_seq))
        out += encode_varint(len(self.ops))
        # Length prefixes are appended directly (not via
        # encode_length_prefixed) to skip one intermediate bytes object
        # per field — this runs once per write batch on the WAL path.
        for kind, key, value in self.ops:
            out.append(kind)
            out += encode_varint(len(key))
            out += key
            out += encode_varint(len(value))
            out += value
        return bytes(out)

    @classmethod
    def decode(cls, payload: bytes) -> tuple["WriteBatch", int]:
        start_seq, pos = decode_varint(payload, 0)
        count, pos = decode_varint(payload, pos)
        batch = cls()
        for _ in range(count):
            kind = payload[pos]
            pos += 1
            key, pos = decode_length_prefixed(payload, pos)
            value, pos = decode_length_prefixed(payload, pos)
            batch.ops.append((kind, key, value))
        return batch, start_seq


class Snapshot:
    """A consistent read point (all writes with ``seq <= self.seq``)."""

    def __init__(self, db: "DB", seq: int) -> None:
        self._db = db
        self.seq = seq
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._db._release_snapshot(self)
            self._released = True

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


def _approximate_batch_bytes(batch: "WriteBatch") -> int:
    """Upper-bound WAL size of ``batch``, for sizing write groups.

    Counting exact varint widths would mean encoding twice; keys and
    values dominate, so a fixed per-op overhead is plenty.
    """
    return 16 + sum(len(key) + len(value) + 12
                    for _kind, key, value in batch.ops)


class _Writer:
    """One queued write (LevelDB's ``Writer`` struct).

    Writers park in ``DB._writers``; the one at the head becomes the group
    leader, commits a prefix of the queue in a single WAL append, and marks
    every member ``done`` with its last assigned sequence (or the shared
    error).  ``batch is None`` marks a flush sentinel: it claims the head
    slot so no leader can insert into the MemTable while ``flush()``
    rotates it, but it never commits anything itself.
    """

    __slots__ = ("batch", "done", "seq", "error")

    def __init__(self, batch: "WriteBatch | None") -> None:
        self.batch = batch
        self.done = False
        self.seq = 0
        self.error: BaseException | None = None


class _ReadState:
    """What one read pins: both MemTables, a Version, the published seq.

    Captured under the mutex in one short critical section; afterwards the
    read runs lock-free.  The Version is refcounted so background
    compaction defers deleting table files the read may still touch.
    """

    __slots__ = ("memtable", "imm", "version", "seq")


@dataclass
class CorruptionStats:
    """Containment counters (``DB.stats()["corruption"]``).

    Every contained :class:`~repro.lsm.errors.CorruptionError` is counted:
    quarantine must leave an auditable trail, never silently narrow
    results.
    """

    events: int = 0              # contained corruption errors
    tables_quarantined: int = 0  # cumulative quarantine decisions


@dataclass
class PipelineStats:
    """Gauges for the background write pipeline (``DB.stats()["pipeline"]``)."""

    stall_events: int = 0          # writer waits at the stop/rotation gates
    stall_seconds: float = 0.0     # wall time spent in those waits
    slowdown_events: int = 0       # one-step L0 slowdown pauses
    write_groups: int = 0          # leader rounds (one WAL append+sync each)
    group_commit_batches: int = 0  # batches committed through those rounds
    group_commit_ops: int = 0      # ops committed through those rounds
    max_group_batches: int = 0     # largest single group
    bg_flushes: int = 0            # immutable-MemTable flushes by the thread
    bg_compactions: int = 0        # compactions run by the thread


def _requested_compaction_processes(options: Options) -> tuple[int, bool]:
    """``(worker_count, came_from_env)`` for multiprocess compaction.

    ``Options.compaction_processes`` wins; when it is 0 the
    ``REPRO_COMPACTION_PROCESSES`` environment variable can opt a whole
    test run in without touching call sites (the CI multiprocess job).
    """
    if options.compaction_processes > 0:
        return options.compaction_processes, False
    raw = os.environ.get("REPRO_COMPACTION_PROCESSES", "")
    if raw.isdigit() and int(raw) > 0:
        return int(raw), True
    return 0, False


class DB:
    """A LevelDB-style LSM key-value store over a metered VFS."""

    def __init__(self, vfs: VFS, name: str, options: Options) -> None:
        """Use :meth:`open` / :meth:`open_memory` instead of direct construction."""
        self.vfs = vfs
        self.name = name
        self.options = options
        self.versions = VersionSet(options)
        self.table_cache = TableCache(vfs, name, options)
        self.memtable = MemTable()
        self._manifest: ManifestWriter | None = None
        self._log: LogWriter | None = None
        self._log_number = 0
        self._closed = False
        self._snapshots: list[Snapshot] = []
        self._flush_listeners: list[FlushListener] = []
        # -- corruption containment (see DESIGN.md §9) ----------------------
        self._quarantined: set[int] = set()  # table files served around
        self.corruption_stats = CorruptionStats()
        self._read_only = False          # ENOSPC flipped the DB read-only
        self._read_only_reason: str | None = None
        self._scrubber = None            # lazily created by DB.scrub()
        # -- background pipeline state (all guarded by _mutex) --------------
        self._bg = bool(options.background_compaction)
        self._mutex = threading.RLock()
        self._work_cv = threading.Condition(self._mutex)   # bg thread waits
        self._stall_cv = threading.Condition(self._mutex)  # writers wait
        self.imm: MemTable | None = None     # sealed MemTable being flushed
        self._imm_retire_log = 0  # log_number the imm's flush edit records
        self._imm_old_log = 0     # WAL file deleted once the imm is durable
        self._writers: deque[_Writer] = deque()
        self._pending_seq = 0  # last *allocated* seq; published lags behind
        self._version_pins: dict[int, list] = {}  # id(version) -> [v, refs]
        self._zombie_tables: set[int] = set()  # retired but pinned files
        self._bg_thread: threading.Thread | None = None
        self._bg_stop = False
        self._bg_error: BaseException | None = None
        self._bg_compacting = False
        self._manual_compaction = False
        self.pipeline_stats = PipelineStats()
        self.compactor = Compactor(
            vfs, name, options, self.versions, self.table_cache,
            self._log_and_apply, self._oldest_snapshot_seq,
            retire_files=self._retire_table_files)
        # -- multiprocess compaction (DESIGN.md §11) ------------------------
        self._shm_cache = None
        self._executor = None
        processes, from_env = _requested_compaction_processes(options)
        if processes > 0 and options.step_hook is None \
                and getattr(vfs, "root", None) is not None:
            from repro.lsm.procpool import create_executor

            if options.shm_cache_bytes > 0:
                from repro.lsm.shmcache import (
                    SharedBlockCache,
                    slot_payload_bytes,
                )

                self._shm_cache = SharedBlockCache.create(
                    options.shm_cache_bytes, slot_payload_bytes(options))
                # Before _recover(): tables opened later must see the
                # layered cache.
                self.table_cache.attach_shared_cache(self._shm_cache)
            self._executor = create_executor(
                vfs, name, options, processes,
                shm_name=(self._shm_cache.name
                          if self._shm_cache is not None else None),
                discard=self._discard_worker_outputs, quiet=from_env)
            self.compactor.executor = self._executor
        self._recover()
        self._pending_seq = self.versions.last_sequence
        if self._bg:
            self._bg_thread = threading.Thread(
                target=self._background_main, name=f"bg:{name}", daemon=True)
            self._bg_thread.start()
            # Under the deterministic scheduler this lets the spawner wait
            # for the new task to reach its first yield point.
            self._step(f"spawn:bg:{name}")

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def open(cls, vfs: VFS, name: str = "db",
             options: Options | None = None) -> "DB":
        """Open (creating if necessary) the database ``name`` on ``vfs``."""
        return cls(vfs, name, options or Options())

    @classmethod
    def open_memory(cls, options: Options | None = None,
                    name: str = "db") -> "DB":
        """Open a fresh database on a private in-memory VFS."""
        return cls(MemoryVFS(), name, options or Options())

    def _recover(self) -> None:
        existed = recover_version_set(self.vfs, self.name, self.versions)
        if existed:
            self._replay_logs()
            if not self.memtable.is_empty():
                # Persist replayed writes as a level-0 table *before* the
                # fresh manifest below advances the log number and the old
                # WALs are deleted.  Without this, recovered writes lived
                # only in the MemTable while their WAL was already gone —
                # a second crash (or even a clean close without a flush)
                # lost them permanently.  LevelDB likewise writes level-0
                # tables from recovered logs during open.
                self.compactor.flush_memtable(self.memtable)
                self.memtable = MemTable()
        new_manifest_number = self.versions.new_file_number()
        self._manifest = ManifestWriter(self.vfs, self.name,
                                        new_manifest_number)
        self._log_number = self.versions.new_file_number()
        edit = VersionEdit(
            log_number=self._log_number,
            next_file_number=self.versions.next_file_number,
            last_sequence=self.versions.last_sequence)
        # Re-log the full current state into the fresh manifest so it is
        # self-contained (LevelDB writes a similar "snapshot" record).
        for level, meta in self.versions.current.all_files():
            edit.add_file(level, meta)
        for level, pointer in enumerate(self.versions.compact_pointers):
            if pointer is not None:
                edit.compact_pointers.append((level, pointer))
        self.versions.log_number = self._log_number
        self._manifest.log_edit(edit)
        self._manifest.install_as_current()
        self._log = LogWriter(
            self.vfs.create(log_file_name(self.name, self._log_number)),
            sync=self.options.sync_writes)
        self._delete_obsolete_files()

    def _replay_logs(self) -> None:
        log_names = [name for name in self.vfs.list_dir(self.name + "/")
                     if name.endswith(".log")]
        for name in sorted(log_names):
            number = _parse_file_number(name.rsplit("/", 1)[-1])
            if number is None:
                logger.warning("ignoring unrecognized log file %r", name)
                continue
            if number < self.versions.log_number:
                continue
            reader = LogReader(self.vfs.open_random(name))
            for payload in reader:
                batch, start_seq = WriteBatch.decode(payload)
                for offset, (kind, key, value) in enumerate(batch.ops):
                    self.memtable.add(start_seq + offset, kind, key, value)
                self.versions.last_sequence = max(
                    self.versions.last_sequence,
                    start_seq + len(batch.ops) - 1)

    def _delete_obsolete_files(self) -> None:
        live = self.versions.live_file_numbers()
        tmp = current_tmp_file_name(self.name)
        for name in self.vfs.list_dir(self.name + "/"):
            base = name.rsplit("/", 1)[-1]
            if name == tmp:
                # A crash between writing CURRENT.tmp and renaming it over
                # CURRENT strands the scratch file; it is never meaningful
                # after open.
                self.vfs.delete_if_exists(name)
            elif base.endswith(".ldb"):
                number = _parse_file_number(base)
                if number is None:
                    logger.warning("ignoring unrecognized table file %r",
                                   name)
                elif number not in live:
                    self.table_cache.evict(number)
                    self.vfs.delete_if_exists(name)
            elif base.endswith(".log"):
                number = _parse_file_number(base)
                if number is None:
                    logger.warning("ignoring unrecognized log file %r", name)
                elif number < self._log_number:
                    self.vfs.delete_if_exists(name)
            elif base.startswith("MANIFEST-"):
                assert self._manifest is not None
                suffix = base.split("-", 1)[1]
                if not suffix.isdigit():
                    logger.warning("ignoring unrecognized manifest file %r",
                                   name)
                elif int(suffix) != self._manifest.number:
                    self.vfs.delete_if_exists(name)

    def close(self) -> None:
        if self._closed:
            return
        if self._bg_thread is not None:
            with self._mutex:
                self._bg_stop = True
                self._work_cv.notify_all()
            hook = self.options.step_hook
            if hook is not None:
                # Cooperative join: keep yielding to the scheduler so it can
                # run the background task to completion instead of
                # deadlocking on a real join while the task is parked.  The
                # guard keeps this loop out of the schedule until the thread
                # has actually exited (a plain park would add an unbounded
                # "poll again" branch to every explored schedule).
                thread = self._bg_thread
                park_until = getattr(hook, "park_until", None)
                while thread.is_alive():
                    if park_until is not None:
                        park_until("close:join",
                                   lambda: not thread.is_alive())
                    else:
                        hook("close:join")
            self._bg_thread.join()
            self._bg_thread = None
        if self._executor is not None:
            # Bounded shutdown: quit messages, then join-with-timeout, then
            # terminate/kill — a dead or wedged worker cannot hang close().
            self._executor.close()
            self._executor = None
            self.compactor.executor = None
        if self._log is not None:
            # A clean shutdown must not lose acknowledged writes even with
            # sync_writes off: push the WAL tail to stable storage first.
            # In read-only mode the WAL writer may be mid-rotation (or the
            # disk still full); acknowledged records were already appended,
            # so a failing final sync must not abort the close.
            try:
                self._log.sync()
                self._log.close()
            except (OSError, ValueError) as exc:
                if not self._read_only:
                    raise
                logger.warning("read-only close: WAL sync skipped (%s)", exc)
        if self._manifest is not None:
            self._manifest.close()
        self.table_cache.close()
        if self._shm_cache is not None:
            self._shm_cache.close()  # owner: unlinks the segment
            self._shm_cache = None
        self._closed = True

    def __enter__(self) -> "DB":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise DBClosedError("database is closed")

    # -- pipeline plumbing ----------------------------------------------------

    def _step(self, label: str) -> None:
        """Deterministic-scheduler yield point (no-op without a hook).

        Never call this while holding ``_mutex``: a parked task must not
        block every other task on the lock.
        """
        hook = self.options.step_hook
        if hook is not None:
            hook(label)

    def _await_locked(self, cv: threading.Condition,
                      predicate: Callable[[], bool], label: str) -> None:
        """Wait until ``predicate()`` holds; ``_mutex`` must be held (once).

        With no step hook this is a plain condition wait.  Under the
        deterministic scheduler, condition variables would park a task
        outside the scheduler's control, so the wait is rewritten as a
        yield loop that releases the mutex, parks at ``label``, then
        reacquires and rechecks — the scheduler decides who runs next.
        The predicate doubles as the park's *guard* (when the hook
        supports guards): the scheduler will not pick this task again
        until the predicate reads true, keeping futile wake-recheck-park
        cycles out of the explored schedules.  Guard evaluation happens
        without the mutex, so predicates must be cheap pure reads; the
        recheck under the mutex here stays authoritative.
        """
        if self.options.step_hook is None:
            cv.wait_for(predicate)
            return
        hook = self.options.step_hook
        park_until = getattr(hook, "park_until", None)
        while not predicate():
            self._mutex.release()
            try:
                if park_until is not None:
                    park_until(label, predicate)
                else:
                    hook(label)
            finally:
                self._mutex.acquire()

    def _raise_if_bg_failed(self) -> None:
        if self._bg_error is not None:
            raise self._bg_error

    # -- corruption containment -------------------------------------------------

    @property
    def read_only(self) -> bool:
        """True once a write-path ENOSPC parked the DB in read-only mode."""
        return self._read_only

    def is_quarantined(self, file_number: int) -> bool:
        return file_number in self._quarantined

    def quarantined_tables(self) -> list[int]:
        """File numbers of quarantined tables, sorted."""
        with self._mutex:
            return sorted(self._quarantined)

    def _quarantine_table(self, file_number: int, exc: BaseException) -> None:
        """Serve around ``file_number`` from now on; purge it from caches.

        The table stays on disk (repair may salvage most of it); reads
        simply stop consulting it.  Every cache that may hold its bytes —
        the open-reader table cache, the decompressed-block cache, and the
        OS-page-cache model — is purged so nothing decoded from rotten
        bytes outlives the quarantine decision.
        """
        with self._mutex:
            if file_number in self._quarantined:
                return
            self._quarantined.add(file_number)
            self.corruption_stats.tables_quarantined += 1
        self.table_cache.evict(file_number)
        block_cache = self.table_cache.block_cache
        if block_cache is not None:
            block_cache.evict_file(file_number)
        invalidate = getattr(self.vfs, "invalidate_file", None)
        if invalidate is not None:
            invalidate(table_file_name(self.name, file_number))
        logger.warning("quarantined corrupt table %06d: %s", file_number, exc)

    def _contain_or_raise(self, file_number: int, exc: CorruptionError) -> None:
        """Apply ``options.on_corruption`` to a failed table read."""
        if self.options.on_corruption != "quarantine":
            raise exc
        self.corruption_stats.events += 1
        self._quarantine_table(file_number, exc)

    def _safe_table(self, file_number: int):
        """Table reader for ``file_number``, or ``None`` when contained.

        Only used on the quarantine-policy read paths: a quarantined table
        reads as absent, and a table whose *open* fails (bad footer/index)
        is quarantined whole on the spot.
        """
        if file_number in self._quarantined:
            return None
        try:
            return self.table_cache.get(file_number)
        except CorruptionError as exc:
            self._contain_or_raise(file_number, exc)
            return None

    def _guarded_sorted_entries(self, file_number: int,
                                start_key: bytes | None, category: Category
                                ) -> Iterator[tuple[tuple[bytes, int], bytes]]:
        """A table's scan stream under the quarantine policy.

        Block decode errors end the stream (later blocks of the table are
        unreachable once it is quarantined) instead of killing the whole
        scan; entries from blocks that decoded cleanly have already been
        served and stay valid.
        """
        table = self._safe_table(file_number)
        if table is None:
            return
        stream = table.sorted_entries(start_key, category)
        while True:
            try:
                item = next(stream)
            except StopIteration:
                return
            except CorruptionError as exc:
                self._contain_or_raise(file_number, exc)
                return
            yield item

    def _is_enospc(self, exc: BaseException) -> bool:
        return getattr(exc, "errno", None) == errno.ENOSPC

    def _enter_read_only_locked(self, exc: BaseException) -> None:
        """Flip into clean read-only mode after a write-path ENOSPC.

        Mutex held.  Reads keep working against everything already
        acknowledged (MemTables included); every later mutation raises
        :class:`~repro.lsm.errors.ReadOnlyError`; the background pipeline
        parks (no crash-loop of doomed flush retries) but its thread stays
        alive so ``close()`` remains orderly.
        """
        if not self._read_only:
            self._read_only = True
            self._read_only_reason = f"{type(exc).__name__}: {exc}"
            logger.warning("entering read-only mode: %s", exc)
        self._stall_cv.notify_all()
        self._work_cv.notify_all()

    def _check_writable(self) -> None:
        if self._read_only:
            raise ReadOnlyError(
                f"database is read-only ({self._read_only_reason})")

    def scrub(self, block_budget: int | None = None):
        """Run (or resume) the CRC scrubber; see :mod:`repro.lsm.scrub`.

        The scrubber object persists across calls, so repeated budgeted
        invocations walk the whole database incrementally — usable inline
        or from a background maintenance loop.
        """
        self._check_open()
        if self._scrubber is None:
            from repro.lsm.scrub import Scrubber

            self._scrubber = Scrubber(self)
        return self._scrubber.run(block_budget)

    # -- writes -----------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> int:
        """Insert or overwrite ``key`` (Table 1's PUT); returns its seq.

        The returned sequence number is the one assigned to *this* write
        by the commit itself — callers that need to attribute the write
        (secondary indexes, replication) must use it rather than read
        ``versions.last_sequence`` afterwards, which a concurrent writer
        may have advanced in between.
        """
        return self.write(WriteBatch().put(key, value))

    def delete(self, key: bytes) -> int:
        """Remove ``key`` if present (Table 1's DEL): writes a tombstone.

        Returns the tombstone's sequence number (see :meth:`put`).
        """
        return self.write(WriteBatch().delete(key))

    def merge(self, key: bytes, operand: bytes) -> int:
        """Append a merge operand; requires ``options.merge_operator``.

        Returns the operand's sequence number (see :meth:`put`).
        """
        if self.options.merge_operator is None:
            raise InvalidArgumentError(
                "DB.merge requires options.merge_operator")
        return self.write(WriteBatch().merge(key, operand))

    def write(self, batch: WriteBatch) -> int:
        """Apply ``batch`` atomically; returns the last assigned sequence.

        Raises :class:`~repro.lsm.errors.WriteStallError` when level 0 has
        reached ``l0_stop_writes_trigger`` files — only reachable with
        ``disable_auto_compaction``, since inline compaction otherwise
        drains level 0 as it fills.  With ``background_compaction`` the
        same condition blocks the writer until the background thread
        drains level 0 instead of raising.
        """
        if self._bg:
            return self._write_concurrent(batch)
        self._check_open()
        self._check_writable()
        if not batch.ops:
            return self.versions.last_sequence
        if self.versions.current.num_files(0) >= \
                self.options.l0_stop_writes_trigger:
            from repro.lsm.errors import WriteStallError

            raise WriteStallError(
                f"level 0 holds {self.versions.current.num_files(0)} files "
                f"(stop trigger {self.options.l0_stop_writes_trigger}); "
                f"run compact_range() or enable auto compaction")
        if self.options.sequence_oracle is not None:
            start_seq = self.options.sequence_oracle(len(batch.ops))
            if start_seq <= self.versions.last_sequence:
                raise InvalidArgumentError(
                    f"sequence oracle went backwards: {start_seq} <= "
                    f"{self.versions.last_sequence}")
        else:
            start_seq = self.versions.last_sequence + 1
        assert self._log is not None
        try:
            self._log.add_record(batch.encode(start_seq))
        except OSError as exc:
            # ENOSPC before any MemTable insert: the batch is not acked and
            # nothing is half-applied.  Park the DB read-only; the caller
            # sees the original error, later writes see ReadOnlyError.
            if self._is_enospc(exc):
                with self._mutex:
                    self._enter_read_only_locked(exc)
            raise
        for offset, (kind, key, value) in enumerate(batch.ops):
            self.memtable.add(start_seq + offset, kind, key, value)
        self.versions.last_sequence = start_seq + len(batch.ops) - 1
        self._maybe_flush()
        return self.versions.last_sequence

    def _maybe_flush(self) -> None:
        if self.memtable.approximate_memory_usage \
                < self.options.memtable_budget:
            return
        self.flush()

    # -- concurrent write path (background_compaction) -------------------------

    def _write_concurrent(self, batch: WriteBatch) -> int:
        """LevelDB's leader/follower group commit.

        Every writer enqueues and waits until either (a) a leader already
        committed it, or (b) it reaches the queue head and becomes the
        leader itself.  The leader makes room (stall ladder), claims a
        contiguous sequence range for a prefix of the queue, then — with
        the mutex *released*, since it alone owns the WAL and the active
        MemTable head — appends all batches in one WAL write, inserts them
        into the MemTable, and finally publishes ``last_sequence``.
        Readers snapshot the published value, so a half-applied group is
        never visible: sequences become readable only after every MemTable
        insert of the group completed.
        """
        self._check_open()
        if not batch.ops:
            return self.versions.last_sequence
        writer = _Writer(batch)
        with self._mutex:
            self._raise_if_bg_failed()
            self._check_writable()
            self._writers.append(writer)
            self._await_locked(
                self._stall_cv,
                lambda: writer.done or self._writers[0] is writer,
                "write:queue")
            if writer.done:
                if writer.error is not None:
                    raise writer.error
                return writer.seq
            # This writer is now the leader.
            try:
                self._make_room_for_write()
                group = [writer]
                group_bytes = _approximate_batch_bytes(writer.batch)
                for candidate in list(self._writers)[1:]:
                    if candidate.batch is None:
                        break  # flush sentinel: do not commit past it
                    size = _approximate_batch_bytes(candidate.batch)
                    if group_bytes + size > self.options.max_write_group_bytes:
                        break
                    group.append(candidate)
                    group_bytes += size
                total_ops = sum(len(w.batch.ops) for w in group)
                if self.options.sequence_oracle is not None:
                    start_seq = self.options.sequence_oracle(total_ops)
                    if start_seq <= self._pending_seq:
                        raise InvalidArgumentError(
                            f"sequence oracle went backwards: {start_seq} "
                            f"<= {self._pending_seq}")
                else:
                    start_seq = self._pending_seq + 1
                self._pending_seq = start_seq + total_ops - 1
            except BaseException:
                self._writers.remove(writer)
                self._stall_cv.notify_all()
                raise
            memtable = self.memtable
            log = self._log
        # -- mutex released: only the leader runs here ---------------------
        error: BaseException | None = None
        seqs: list[int] = []
        payloads: list[bytes] = []
        seq = start_seq
        for member in group:
            payloads.append(member.batch.encode(seq))
            seqs.append(seq)
            seq += len(member.batch.ops)
        self._step("write:wal")
        try:
            assert log is not None
            log.add_records(payloads)
            self._step("write:memtable")
            for member, member_seq in zip(group, seqs):
                for offset, (kind, key, value) in enumerate(member.batch.ops):
                    memtable.add(member_seq + offset, kind, key, value)
        except BaseException as exc:  # noqa: BLE001 - propagated to the group
            error = exc
        self._step("write:publish")
        with self._mutex:
            if error is None:
                self.versions.last_sequence = max(
                    self.versions.last_sequence, start_seq + total_ops - 1)
            elif self._is_enospc(error):
                # Disk full during the group's WAL append: nothing in the
                # group was acknowledged.  Park read-only so queued writers
                # fail fast instead of each rediscovering the full disk.
                self._enter_read_only_locked(error)
            stats = self.pipeline_stats
            stats.write_groups += 1
            stats.group_commit_batches += len(group)
            stats.group_commit_ops += total_ops
            if len(group) > stats.max_group_batches:
                stats.max_group_batches = len(group)
            for member, member_seq in zip(group, seqs):
                popped = self._writers.popleft()
                assert popped is member
                member.seq = member_seq + len(member.batch.ops) - 1
                member.error = error
                member.done = True
            self._stall_cv.notify_all()
            # Eager rotation keeps the pipeline primed: hand the full
            # MemTable to the background thread now instead of making the
            # next writer pay for the rotation.
            if (error is None and self.imm is None
                    and self.memtable.approximate_memory_usage
                    >= self.options.memtable_budget):
                self._rotate_memtable_locked()
        if error is not None:
            raise error
        return writer.seq

    def _make_room_for_write(self) -> None:
        """LevelDB's write-stall ladder; called by the leader, mutex held.

        In order: a one-step *slowdown* pause when level 0 approaches the
        stop trigger (spreads delay across writers instead of one long
        stall), a wait for the previous immutable MemTable to drain when
        the active one is full, and a hard *stop* wait when level 0 is at
        the stop trigger.  With ``disable_auto_compaction`` nothing would
        ever drain level 0, so the stop condition raises instead of
        deadlocking — same contract as the inline path.
        """
        options = self.options
        allow_delay = True
        stats = self.pipeline_stats
        while True:
            self._raise_if_bg_failed()
            self._check_writable()
            l0_files = self.versions.current.num_files(0)
            if l0_files >= options.l0_stop_writes_trigger \
                    and options.disable_auto_compaction:
                from repro.lsm.errors import WriteStallError

                raise WriteStallError(
                    f"level 0 holds {l0_files} files "
                    f"(stop trigger {options.l0_stop_writes_trigger}); "
                    f"run compact_range() or enable auto compaction")
            if allow_delay and not options.disable_auto_compaction \
                    and options.l0_slowdown_writes_trigger <= l0_files \
                    < options.l0_stop_writes_trigger:
                allow_delay = False  # at most one pause per write
                stats.slowdown_events += 1
                self._mutex.release()
                try:
                    if self.options.step_hook is not None:
                        self.options.step_hook("stall:slowdown")
                    else:
                        time.sleep(options.slowdown_sleep_seconds)
                finally:
                    self._mutex.acquire()
                continue
            if self.memtable.approximate_memory_usage \
                    < options.memtable_budget:
                return
            if self.imm is not None:
                started = time.perf_counter()
                stats.stall_events += 1
                self._await_locked(
                    self._stall_cv,
                    lambda: self.imm is None or self._bg_error is not None
                    or self._read_only,
                    "stall:memtable")
                stats.stall_seconds += time.perf_counter() - started
                continue
            if l0_files >= options.l0_stop_writes_trigger:
                started = time.perf_counter()
                stats.stall_events += 1
                self._await_locked(
                    self._stall_cv,
                    lambda: (self.versions.current.num_files(0)
                             < options.l0_stop_writes_trigger
                             or self._bg_error is not None
                             or self._read_only),
                    "stall:stop")
                stats.stall_seconds += time.perf_counter() - started
                continue
            self._rotate_memtable_locked()
            return

    def _rotate_memtable_locked(self) -> None:
        """Seal the active MemTable into ``imm`` and switch to a new WAL.

        Mutex held; ``self.imm`` must be ``None``.  The old WAL stays on
        disk until the background flush durably installs the level-0 table
        whose edit records the *new* log number — the same
        crash-consistency invariant as the inline flush.
        """
        assert self.imm is None
        old_log_number = self._log_number
        new_log_number = self.versions.new_file_number()
        assert self._log is not None
        self._log.close()
        self._log = LogWriter(
            self.vfs.create(log_file_name(self.name, new_log_number)),
            sync=self.options.sync_writes)
        self._log_number = new_log_number
        self.memtable.seal()
        self.imm = self.memtable
        self._imm_retire_log = new_log_number
        self._imm_old_log = old_log_number
        self.memtable = MemTable()
        self._work_cv.notify_all()

    # -- background thread -----------------------------------------------------

    def _background_work_ready(self) -> bool:
        # Mutex held (predicate of _await_locked).
        if self._bg_stop:
            return True
        if self._read_only:
            # Read-only (disk full): every flush/compaction is doomed, so
            # park instead of crash-looping.  The thread stays alive for an
            # orderly close(); _bg_stop above still wakes it.
            return False
        if self.imm is not None:
            return True
        if self._manual_compaction or self.options.disable_auto_compaction:
            return False
        return pick_compaction(self.versions) is not None

    def _background_main(self) -> None:
        """Main loop of the maintenance thread: flush ``imm``, then compact.

        Any exception (including a simulated crash from the fault-injecting
        VFS) is captured into ``_bg_error`` and re-raised to the next
        foreground writer/flush, mirroring LevelDB's sticky background
        error.
        """
        try:
            while True:
                imm = None
                compaction = None
                with self._mutex:
                    self._await_locked(
                        self._work_cv, self._background_work_ready, "bg:idle")
                    if self._bg_stop:
                        return
                    imm = self.imm
                    if imm is None and not self._manual_compaction \
                            and not self.options.disable_auto_compaction:
                        compaction = pick_compaction(self.versions)
                        if compaction is not None:
                            self._bg_compacting = True
                if imm is not None:
                    self._step("bg:flush")
                    try:
                        self._background_flush(imm)
                    except OSError as exc:
                        if not self._is_enospc(exc):
                            raise
                        # Disk full mid-flush: the version edit was not
                        # installed and the imm's WAL is still on disk, so
                        # nothing acknowledged is lost.  Park read-only
                        # (imm stays readable in memory) instead of dying
                        # into a sticky background error.
                        with self._mutex:
                            self._enter_read_only_locked(exc)
                elif compaction is not None:
                    self._step("bg:compact")
                    try:
                        try:
                            self.compactor.run(compaction)
                        except OSError as exc:
                            if not self._is_enospc(exc):
                                raise
                            # A failed compaction installed nothing; inputs
                            # remain live.  Reads are unaffected — just stop
                            # generating doomed write traffic.
                            with self._mutex:
                                self._enter_read_only_locked(exc)
                    finally:
                        with self._mutex:
                            self._bg_compacting = False
                            self.pipeline_stats.bg_compactions += 1
                            self._stall_cv.notify_all()
        except BaseException as exc:  # noqa: BLE001 - surfaced as _bg_error
            with self._mutex:
                self._bg_error = exc
                self._bg_compacting = False
                self._stall_cv.notify_all()

    def _background_flush(self, imm: MemTable) -> None:
        """Flush the immutable MemTable and retire its WAL."""
        self.compactor.flush_memtable(imm, log_number=self._imm_retire_log)
        flushed_max_seq = imm.max_seq or 0
        old_log = self._imm_old_log
        with self._mutex:
            self.imm = None
            self.pipeline_stats.bg_flushes += 1
            self._stall_cv.notify_all()
        self.vfs.delete_if_exists(log_file_name(self.name, old_log))
        # Listeners run on the background thread in pipeline mode.
        for listener in self._flush_listeners:
            listener(flushed_max_seq)

    def _retire_table_files(self, file_numbers: list[int]) -> None:
        """Dispose of compaction-input tables, honoring pinned versions.

        A snapshot-isolated read pins the Version it started from; deleting
        a table that version references would yank blocks out from under
        the read.  Such files become *zombies*, deleted when the last pin
        drops (see :meth:`_release_read_state`).  With no pins — always the
        case inline — this deletes immediately, matching the old behavior.
        """
        from repro.lsm.manifest import table_file_name

        with self._mutex:
            pinned = [entry[0] for entry in self._version_pins.values()]
            current_live = self.versions.current.live_file_numbers()
            for file_number in file_numbers:
                if file_number in current_live:
                    continue  # resurrected by a racing edit; keep it
                if any(file_number in version.live_file_numbers()
                       for version in pinned):
                    self._zombie_tables.add(file_number)
                else:
                    self.table_cache.evict(file_number)
                    self.vfs.delete(table_file_name(self.name, file_number))

    def _discard_worker_outputs(self, file_numbers: list[int]) -> None:
        """Delete the partial outputs of a failed worker compaction job.

        These files were allocated numbers but never entered any version,
        so there are no pins to honor — they must simply not survive as
        orphans for ``verify_integrity`` to flag.  Poisoned shared-cache
        blocks keyed by a reused file number would serve wrong bytes, so
        the shm slots go too.
        """
        for file_number in file_numbers:
            self.table_cache.evict(file_number)
            if self._shm_cache is not None:
                self._shm_cache.evict_file(file_number)
            self.vfs.delete_if_exists(table_file_name(self.name, file_number))

    # -- snapshot-isolated read state -------------------------------------------

    def _acquire_read_state(self) -> _ReadState:
        """Pin everything one read needs, in one short critical section."""
        # The one scheduling point of the read path: once pinned, snapshot
        # isolation makes the rest of the read independent of concurrent
        # writers, so yielding *here* lets the deterministic harness explore
        # every distinct read outcome.
        self._step("read:pin")
        state = _ReadState()
        with self._mutex:
            state.memtable = self.memtable
            state.imm = self.imm
            state.version = self.versions.current
            state.seq = self.versions.last_sequence
            key = id(state.version)
            entry = self._version_pins.get(key)
            if entry is None:
                self._version_pins[key] = [state.version, 1]
            else:
                entry[1] += 1
        return state

    def _release_read_state(self, state: _ReadState) -> None:
        from repro.lsm.manifest import table_file_name

        with self._mutex:
            key = id(state.version)
            entry = self._version_pins.get(key)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] > 0:
                return
            del self._version_pins[key]
            if not self._zombie_tables:
                return
            current_live = self.versions.current.live_file_numbers()
            still_pinned = [e[0] for e in self._version_pins.values()]
            for file_number in sorted(self._zombie_tables):
                if file_number in current_live:
                    self._zombie_tables.discard(file_number)
                    continue
                if any(file_number in version.live_file_numbers()
                       for version in still_pinned):
                    continue
                self._zombie_tables.discard(file_number)
                self.table_cache.evict(file_number)
                self.vfs.delete_if_exists(
                    table_file_name(self.name, file_number))

    def flush(self) -> None:
        """Flush the MemTable to a level-0 SSTable and run due compactions.

        In pipeline mode this seals the active MemTable (if non-empty) and
        blocks until the background thread has drained every immutable
        MemTable — i.e. all data acknowledged so far is in level 0.
        """
        if self._bg:
            self._flush_concurrent()
            return
        self._check_open()
        self._check_writable()
        if self.memtable.is_empty():
            return
        try:
            self._flush_inline()
        except OSError as exc:
            # A full disk mid-flush is survivable: the version edit was not
            # installed, the MemTable was not reset and the old WAL is still
            # on disk, so every acknowledged write remains readable (and
            # replayable on reopen).  Park read-only rather than letting
            # callers retry a doomed flush forever.
            if self._is_enospc(exc):
                with self._mutex:
                    self._enter_read_only_locked(exc)
            raise

    def _flush_inline(self) -> None:
        flushed_max_seq = self.memtable.max_seq or 0
        old_log_number = self._log_number
        assert self._log is not None
        self._log.close()
        self._log_number = self.versions.new_file_number()
        self._log = LogWriter(
            self.vfs.create(log_file_name(self.name, self._log_number)),
            sync=self.options.sync_writes)
        # One edit makes the table live AND retires the old WAL.  Two
        # separate edits would open a crash window where the table is live
        # but the manifest still points at the old log: recovery would
        # replay writes already in the table, folding merge operands twice.
        self.compactor.flush_memtable(self.memtable,
                                      log_number=self._log_number)
        self.memtable = MemTable()
        # A crash-interrupted earlier flush (or recovery's own cleanup) may
        # have removed the previous WAL already.
        self.vfs.delete_if_exists(log_file_name(self.name, old_log_number))
        for listener in self._flush_listeners:
            listener(flushed_max_seq)
        if not self.options.disable_auto_compaction:
            self.compactor.maybe_compact()

    def _flush_concurrent(self) -> None:
        """Pipeline-mode flush: rotate under a queue sentinel, then drain.

        The sentinel claims the writer-queue head so no leader can be
        inserting into the active MemTable while it is sealed; pending
        writers simply commit after the rotation, into the fresh MemTable.
        """
        self._check_open()
        sentinel = _Writer(None)
        with self._mutex:
            self._raise_if_bg_failed()
            self._check_writable()
            self._writers.append(sentinel)
            self._await_locked(
                self._stall_cv,
                lambda: self._writers[0] is sentinel,
                "flush:queue")
            try:
                if not self.memtable.is_empty():
                    self._await_locked(
                        self._stall_cv,
                        lambda: self.imm is None or self._bg_error is not None
                        or self._read_only,
                        "flush:room")
                    self._raise_if_bg_failed()
                    self._check_writable()
                    self._rotate_memtable_locked()
            finally:
                popped = self._writers.popleft()
                assert popped is sentinel
                self._stall_cv.notify_all()
            self._await_locked(
                self._stall_cv,
                lambda: self.imm is None or self._bg_error is not None
                or self._read_only,
                "flush:drain")
            self._raise_if_bg_failed()
            if self.imm is not None:
                # Read-only parked the background thread with the immutable
                # MemTable undrained; its data is still fully readable (and
                # still in its WAL), but this flush cannot complete.
                self._check_writable()

    def _log_and_apply(self, edit: VersionEdit) -> None:
        # The mutex serializes a foreground manual compaction against the
        # background thread's flush installs, and makes each manifest
        # log+apply atomic with respect to readers pinning the current
        # version.  Inline (single-threaded) it is uncontended.
        with self._mutex:
            edit.next_file_number = self.versions.next_file_number
            edit.last_sequence = self.versions.last_sequence
            if self._manifest is None:
                # Recovery-time flush: the manifest does not exist yet.  The
                # self-contained snapshot edit written right after captures
                # the applied state, so nothing is lost by skipping the log.
                self.versions.apply(edit)
                return
            self._manifest.log_edit(edit)
            self.versions.apply(edit)
            if self._manifest.size > self.options.max_manifest_size:
                self._roll_manifest()
            # New level-0 files may unblock stalled writers or create work.
            self._stall_cv.notify_all()
            self._work_cv.notify_all()

    def _roll_manifest(self) -> None:
        """Replace the grown manifest with one snapshot-edit manifest.

        The manifest gains an edit per flush/compaction forever; rolling
        rewrites it as a single self-contained snapshot of the current
        version (LevelDB does the same on reopen and past a size limit).
        """
        from repro.lsm.manifest import manifest_file_name

        old_manifest = self._manifest
        assert old_manifest is not None
        number = self.versions.new_file_number()
        snapshot = VersionEdit(
            log_number=self._log_number,
            next_file_number=self.versions.next_file_number,
            last_sequence=self.versions.last_sequence)
        for level, meta in self.versions.current.all_files():
            snapshot.add_file(level, meta)
        for level, pointer in enumerate(self.versions.compact_pointers):
            if pointer is not None:
                snapshot.compact_pointers.append((level, pointer))
        new_manifest = ManifestWriter(self.vfs, self.name, number)
        new_manifest.log_edit(snapshot)
        new_manifest.install_as_current()
        old_manifest.close()
        self.vfs.delete_if_exists(
            manifest_file_name(self.name, old_manifest.number))
        self._manifest = new_manifest

    def add_flush_listener(self, listener: FlushListener) -> None:
        """Register a callback invoked with the max flushed seq after a flush."""
        self._flush_listeners.append(listener)

    # -- point reads ---------------------------------------------------------

    def get(self, key: bytes, snapshot: Snapshot | None = None) -> bytes | None:
        """Newest visible value of ``key``, or ``None`` (Table 1's GET)."""
        result = self.get_with_seq(key, snapshot)
        if result is None:
            return None
        return result[0]

    def get_with_seq(self, key: bytes, snapshot: Snapshot | None = None
                     ) -> tuple[bytes, int] | None:
        """Like :meth:`get` but also reports the resolving sequence number.

        For a merge chain the sequence of the newest operand is reported:
        it is the "time" the value last changed.
        """
        self._check_open()
        if not self._bg:
            max_seq = snapshot.seq if snapshot is not None else MAX_SEQUENCE
            return self._get_with_seq_pinned(key, max_seq, None)
        state = self._acquire_read_state()
        try:
            # Without an explicit snapshot, the published sequence at read
            # start is the implicit one: a concurrently committing group
            # publishes only after all its MemTable inserts, so no torn
            # (half-a-batch) read is possible.
            max_seq = snapshot.seq if snapshot is not None else state.seq
            return self._get_with_seq_pinned(key, max_seq, state)
        finally:
            self._release_read_state(state)

    def _get_with_seq_pinned(self, key: bytes, max_seq: int,
                             state: _ReadState | None
                             ) -> tuple[bytes, int] | None:
        operands: list[bytes] = []
        newest_seq: int | None = None
        for kind, seq, value in self._versions_of(key, max_seq, state):
            if newest_seq is None:
                newest_seq = seq
            if kind == KIND_MERGE:
                operands.append(value)
                continue
            if kind == KIND_VALUE:
                if operands:
                    return self._fold(key, operands, value), newest_seq
                return value, seq
            # Tombstone: stop — older versions are dead.
            if operands:
                return self._fold(key, operands, None), newest_seq
            return None
        if operands:
            assert newest_seq is not None
            return self._fold(key, operands, None), newest_seq
        return None

    def _fold(self, key: bytes, operands_newest_first: list[bytes],
              base: bytes | None) -> bytes:
        operator = self.options.merge_operator
        if operator is None:
            raise InvalidArgumentError(
                "merge entries present but no merge_operator configured")
        oldest_first = list(reversed(operands_newest_first))
        if base is not None:
            oldest_first.insert(0, base)
        return operator(key, oldest_first)

    def _versions_of(self, key: bytes, max_seq: int,
                     state: _ReadState | None = None
                     ) -> Iterator[tuple[int, int, bytes]]:
        """All stored versions of ``key``, newest first, across components."""
        if state is None:
            memtables = (self.memtable,)
            version = self.versions.current
        else:
            # Active MemTable first: its sequences are strictly newer than
            # the immutable one's, preserving newest-first order.
            memtables = (state.memtable,) if state.imm is None \
                else (state.memtable, state.imm)
            version = state.version
        for memtable in memtables:
            for entry in memtable.versions(key, max_seq):
                yield entry.kind, entry.seq, entry.value
        if self.options.on_corruption == "quarantine":
            yield from self._table_versions_contained(key, max_seq, version)
            return
        table_cache_get = self.table_cache.get
        # Level 0 files may each hold versions; interleave them by seq.
        l0_entries: list[tuple[int, int, bytes]] = []
        for meta in version.files_containing_key(0, key):
            table = table_cache_get(meta.file_number)
            l0_entries.extend(table.versions_raw(key, max_seq))
        if l0_entries:
            l0_entries.sort(key=lambda item: -item[1])
            yield from l0_entries
        for level in range(1, self.options.max_levels):
            for meta in version.files_containing_key(level, key):
                table = table_cache_get(meta.file_number)
                yield from table.versions_raw(key, max_seq)

    def _table_versions_contained(self, key: bytes, max_seq: int, version
                                  ) -> Iterator[tuple[int, int, bytes]]:
        """Quarantine-policy twin of the SSTable half of :meth:`_versions_of`.

        A quarantined table contributes nothing; a table that fails *while*
        being read is quarantined on the spot and its partial result
        discarded (cleanly decoded versions from other tables still serve).
        """
        l0_entries: list[tuple[int, int, bytes]] = []
        for meta in version.files_containing_key(0, key):
            table = self._safe_table(meta.file_number)
            if table is None:
                continue
            try:
                l0_entries.extend(table.versions_raw(key, max_seq))
            except CorruptionError as exc:
                self._contain_or_raise(meta.file_number, exc)
        if l0_entries:
            l0_entries.sort(key=lambda item: -item[1])
            yield from l0_entries
        for level in range(1, self.options.max_levels):
            for meta in version.files_containing_key(level, key):
                table = self._safe_table(meta.file_number)
                if table is None:
                    continue
                try:
                    # Materialized so a decode error cannot fire mid-yield.
                    found = list(table.versions_raw(key, max_seq))
                except CorruptionError as exc:
                    self._contain_or_raise(meta.file_number, exc)
                    continue
                yield from found

    # -- LevelDB++ probes -------------------------------------------------------

    def fragments_by_level(self, key: bytes, max_seq: int = MAX_SEQUENCE
                           ) -> list[tuple[int, list[tuple[int, int, bytes]]]]:
        """Per-level version lists for ``key``: ``[(level, [(kind, seq, value)])]``.

        Level ``-1`` is the MemTable.  Within a level, entries come newest
        first.  This is the access path of the Lazy index's LOOKUP
        (Algorithm 3): "it checks the MemTable and then the SSTables, and
        moves down in the storage hierarchy one level at a time".
        """
        self._check_open()
        if self._bg:
            state = self._acquire_read_state()
            try:
                if max_seq == MAX_SEQUENCE:
                    max_seq = state.seq  # implicit snapshot, as in get()
                return self._fragments_pinned(key, max_seq, state)
            finally:
                self._release_read_state(state)
        return self._fragments_pinned(key, max_seq, None)

    def _fragments_pinned(self, key: bytes, max_seq: int,
                          state: _ReadState | None
                          ) -> list[tuple[int, list[tuple[int, int, bytes]]]]:
        out: list[tuple[int, list[tuple[int, int, bytes]]]] = []
        if state is None:
            memtables = (self.memtable,)
            version = self.versions.current
        else:
            memtables = (state.memtable,) if state.imm is None \
                else (state.memtable, state.imm)
            version = state.version
        mem = [(e.kind, e.seq, e.value)
               for memtable in memtables
               for e in memtable.versions(key, max_seq)]
        if mem:
            mem.sort(key=lambda item: -item[1])
            out.append((-1, mem))
        contain = self.options.on_corruption == "quarantine"
        for level in range(self.options.max_levels):
            found: list[tuple[int, int, bytes]] = []
            for meta in version.files_containing_key(level, key):
                if contain:
                    table = self._safe_table(meta.file_number)
                    if table is None:
                        continue
                    try:
                        found.extend(table.versions_raw(key, max_seq,
                                                        Category.INDEX))
                    except CorruptionError as exc:
                        self._contain_or_raise(meta.file_number, exc)
                    continue
                table = self.table_cache.get(meta.file_number)
                found.extend(table.versions_raw(key, max_seq,
                                                Category.INDEX))
            if found:
                found.sort(key=lambda item: -item[1])
                out.append((level, found))
        return out

    def key_maybe_in_levels(self, key: bytes, below_level: int,
                            include_memtable: bool = True) -> bool:
        """In-memory-only probe: could ``key`` exist in levels < ``below_level``?

        Uses the MemTable (exact) and, per candidate SSTable, the in-memory
        index block and primary bloom filters — zero I/O.  This implements
        the paper's ``GetLite`` check: "If the key appears in the upper
        levels (0 to currentlevel-1) ... there is an updated version".
        May return false positives at the bloom rate; never false negatives.
        """
        self._check_open()
        state = self._acquire_read_state() if self._bg else None
        try:
            if state is None:
                memtables = (self.memtable,)
                version = self.versions.current
            else:
                memtables = (state.memtable,) if state.imm is None \
                    else (state.memtable, state.imm)
                version = state.version
            if include_memtable:
                for memtable in memtables:
                    if memtable.get(key) is not None:
                        return True
            contain = self.options.on_corruption == "quarantine"
            for level in range(min(below_level, self.options.max_levels)):
                for meta in version.files_containing_key(level, key):
                    if contain:
                        # Conservative: a quarantined (or unopenable) table
                        # *may* hold a newer version we can no longer prove
                        # absent, so GetLite must treat the row as stale —
                        # missing-but-detected, never a silently wrong value.
                        table = self._safe_table(meta.file_number)
                        if table is None:
                            return True
                        if table.may_contain_user_key(key):
                            return True
                        continue
                    table = self.table_cache.get(meta.file_number)
                    if table.may_contain_user_key(key):
                        return True
            return False
        finally:
            if state is not None:
                self._release_read_state(state)

    # -- range reads ------------------------------------------------------------

    def scan(self, lo: bytes | None = None, hi: bytes | None = None,
             snapshot: Snapshot | None = None,
             category: Category = Category.DATA
             ) -> Iterator[tuple[bytes, bytes]]:
        """User-visible ordered iteration over ``lo <= key <= hi``."""
        return map(itemgetter(0, 1),
                   self.scan_with_seq(lo, hi, snapshot, category))

    def scan_with_seq(self, lo: bytes | None = None, hi: bytes | None = None,
                      snapshot: Snapshot | None = None,
                      category: Category = Category.DATA
                      ) -> Iterator[tuple[bytes, bytes, int]]:
        """Like :meth:`scan` but yields ``(key, value, seq)``.

        This is a fused fast path over the reference pipeline
        ``clip_to_range(resolve_versions(merge_streams(...)))`` (which the
        equivalence tests pin it against): one loop does the k-way heap
        merge and the version resolution directly on ``(sort_key, value)``
        pairs, so no :class:`InternalKey` is allocated per entry and no
        per-entry generator hand-off happens between pipeline stages.
        """
        self._check_open()
        if not self._bg:
            max_seq = snapshot.seq if snapshot is not None else MAX_SEQUENCE
            yield from self._scan_pinned(lo, hi, max_seq, None, category)
            return
        state = self._acquire_read_state()
        try:
            max_seq = snapshot.seq if snapshot is not None else state.seq
            yield from self._scan_pinned(lo, hi, max_seq, state, category)
        finally:
            # Released when the scan is exhausted, closed, or abandoned
            # (generator finalization runs this finally block).
            self._release_read_state(state)

    def _scan_pinned(self, lo: bytes | None, hi: bytes | None, max_seq: int,
                     state: _ReadState | None, category: Category
                     ) -> Iterator[tuple[bytes, bytes, int]]:
        start_key = None if lo is None else \
            pack_internal_key(lo, MAX_SEQUENCE, KIND_FOR_SEEK)
        if state is None:
            streams = [self._memtable_sorted(lo)]
            version = self.versions.current
        else:
            streams = [self._memtable_sorted(lo, state.memtable)]
            if state.imm is not None:
                streams.append(self._memtable_sorted(lo, state.imm))
            version = state.version
        table_cache_get = self.table_cache.get
        contain = self.options.on_corruption == "quarantine"
        # Level-0 files overlap: one heap stream each.  Deeper levels are
        # disjoint and sorted, so a whole level concatenates into a single
        # stream (LevelDB's concatenating iterator) — the heap holds one
        # entry per *level*, not per file, keeping each sift logarithmic in
        # the number of components rather than the number of files.
        for meta in version.overlapping_files(0, lo, hi):
            if contain:
                streams.append(self._guarded_sorted_entries(
                    meta.file_number, start_key, category))
            else:
                streams.append(table_cache_get(meta.file_number)
                               .sorted_entries(start_key, category))
        for level in range(1, self.options.max_levels):
            files = version.overlapping_files(level, lo, hi)
            if contain:
                if files:
                    streams.append(self._sorted_level_stream(
                        files, start_key, category))
            elif len(files) == 1:
                streams.append(table_cache_get(files[0].file_number)
                               .sorted_entries(start_key, category))
            elif files:
                streams.append(
                    self._sorted_level_stream(files, start_key, category))

        # Seed the heap: (sort_key, stream_index, value, advance).  The
        # stream index breaks sort-key ties, so the newest component wins
        # (streams are listed memtable first, then levels top-down).
        heap: list[tuple[tuple[bytes, int], int, bytes, Any]] = []
        for index, stream in enumerate(streams):
            advance = stream.__next__
            try:
                sort_key, value = advance()
            except StopIteration:
                continue
            heap.append((sort_key, index, value, advance))
        heapq.heapify(heap)
        heappop, heapreplace = heapq.heappop, heapq.heapreplace

        current_key: bytes | None = None
        operands: list[bytes] = []  # newest-first merge operands
        operand_seq = 0
        done_with_key = False
        while heap:
            sort_key, index, value, advance = heap[0]
            try:
                nxt = advance()
            except StopIteration:
                heappop(heap)
            else:
                heapreplace(heap, (nxt[0], index, nxt[1], advance))
            user_key = sort_key[0]
            if user_key != current_key:
                if operands:
                    yield (current_key,
                           self._fold(current_key, operands, None),
                           operand_seq)
                    operands = []
                if hi is not None and user_key > hi:
                    return
                current_key = user_key
                done_with_key = False
            if done_with_key or (lo is not None and user_key < lo):
                continue
            tag = -sort_key[1]
            seq = tag >> 8
            if seq > max_seq:
                continue
            kind = tag & 0xFF
            if kind == KIND_MERGE:
                if not operands:
                    operand_seq = seq
                operands.append(value)
                continue
            done_with_key = True
            if operands:
                base = value if kind == KIND_VALUE else None
                yield (current_key, self._fold(current_key, operands, base),
                       operand_seq)
                operands = []
            elif kind == KIND_VALUE:
                yield current_key, value, seq
            # KIND_DELETE with no pending operands: key is simply hidden.
        if operands:
            yield (current_key, self._fold(current_key, operands, None),
                   operand_seq)

    def _sorted_level_stream(self, files, start_key: bytes | None,
                             category: Category
                             ) -> Iterator[tuple[tuple[bytes, int], bytes]]:
        """Concatenated ``(sort_key, value)`` stream over one disjoint level."""
        if self.options.on_corruption == "quarantine":
            for meta in files:
                yield from self._guarded_sorted_entries(
                    meta.file_number, start_key, category)
            return
        table_cache_get = self.table_cache.get
        for meta in files:
            yield from table_cache_get(meta.file_number) \
                .sorted_entries(start_key, category)

    def _memtable_sorted(self, lo: bytes | None,
                         memtable: MemTable | None = None
                         ) -> Iterator[tuple[tuple[bytes, int], bytes]]:
        """MemTable entries as ``(sort_key, value)`` pairs for the scan path."""
        if memtable is None:
            memtable = self.memtable
        if lo is None:
            for entry in memtable:
                yield ((entry.user_key, -((entry.seq << 8) | entry.kind)),
                       entry.value)
            return
        for _key, entry in memtable._list.items_from((lo, 0)):
            yield ((entry.user_key, -((entry.seq << 8) | entry.kind)),
                   entry.value)

    def _memtable_stream(self, lo: bytes | None,
                         memtable: MemTable | None = None
                         ) -> Iterator[tuple[InternalKey, bytes]]:
        if memtable is None:
            memtable = self.memtable
        if lo is None:
            for entry in memtable:
                yield InternalKey(entry.user_key, entry.seq, entry.kind), \
                    entry.value
            return
        start = (lo, 0)
        for (_user_key, _inv_seq), entry in memtable._list.items_from(start):
            yield InternalKey(entry.user_key, entry.seq, entry.kind), \
                entry.value

    @staticmethod
    def _table_stream_from(table, lo: bytes | None, category: Category
                           ) -> Iterator[tuple[InternalKey, bytes]]:
        if lo is None:
            yield from table
        else:
            start = pack_internal_key(lo, MAX_SEQUENCE, KIND_FOR_SEEK)
            yield from table.iterate_from(start, category)

    def scan_level(self, level: int, lo: bytes | None = None,
                   hi: bytes | None = None,
                   category: Category = Category.INDEX
                   ) -> Iterator[tuple[InternalKey, bytes]]:
        """Raw versions stored in one level, in internal-key order.

        ``level == -1`` scans the MemTable.  No version resolution and no
        tombstone hiding happens here: the Lazy and Composite indexes
        interpret per-level entries themselves (Algorithms 3-4, 6-7).
        Entries outside ``[lo, hi]`` (user keys) are excluded.
        """
        self._check_open()
        state = self._acquire_read_state() if self._bg else None
        try:
            if level == -1:
                if state is None:
                    stream: Iterator[tuple[InternalKey, bytes]] = \
                        self._memtable_stream(lo)
                elif state.imm is None:
                    stream = self._memtable_stream(lo, state.memtable)
                else:
                    # Level -1 is "the in-memory component": both MemTables,
                    # merged into one internal-key-ordered stream.
                    stream = merge_streams([
                        self._memtable_stream(lo, state.memtable),
                        self._memtable_stream(lo, state.imm)])
            else:
                version = self.versions.current if state is None \
                    else state.version
                files = version.overlapping_files(level, lo, hi)
                contain = self.options.on_corruption == "quarantine"
                if level == 0:
                    if contain:
                        stream = merge_streams([
                            self._guarded_table_stream(meta.file_number, lo,
                                                       category)
                            for meta in files])
                    else:
                        stream = merge_streams([
                            self._table_stream_from(
                                self.table_cache.get(meta.file_number), lo,
                                category)
                            for meta in files])
                else:
                    stream = self._concat_tables(files, lo, category)
            for ikey, value in stream:
                if lo is not None and ikey.user_key < lo:
                    continue
                if hi is not None and ikey.user_key > hi:
                    return
                yield ikey, value
        finally:
            if state is not None:
                self._release_read_state(state)

    def _concat_tables(self, files, lo: bytes | None, category: Category
                       ) -> Iterator[tuple[InternalKey, bytes]]:
        if self.options.on_corruption == "quarantine":
            for meta in files:
                yield from self._guarded_table_stream(meta.file_number, lo,
                                                      category)
            return
        for meta in files:
            table = self.table_cache.get(meta.file_number)
            yield from self._table_stream_from(table, lo, category)

    def _guarded_table_stream(self, file_number: int, lo: bytes | None,
                              category: Category
                              ) -> Iterator[tuple[InternalKey, bytes]]:
        """Quarantine-policy ``(InternalKey, value)`` stream of one table."""
        table = self._safe_table(file_number)
        if table is None:
            return
        stream = self._table_stream_from(table, lo, category)
        while True:
            try:
                item = next(stream)
            except StopIteration:
                return
            except CorruptionError as exc:
                self._contain_or_raise(file_number, exc)
                return
            yield item

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Pin the current sequence number for consistent reads."""
        self._check_open()
        with self._mutex:
            # The *published* sequence: an in-flight write group's data is
            # never included, even mid-commit.
            snap = Snapshot(self, self.versions.last_sequence)
            self._snapshots.append(snap)
            return snap

    def _release_snapshot(self, snap: Snapshot) -> None:
        with self._mutex:
            self._snapshots = [s for s in self._snapshots if s is not snap]

    def _oldest_snapshot_seq(self) -> int:
        # Called from the background thread (compaction's drop criterion)
        # and from foreground compactions alike.
        with self._mutex:
            if not self._snapshots:
                return MAX_SEQUENCE
            return min(snap.seq for snap in self._snapshots)

    # -- maintenance & introspection ---------------------------------------------

    def compact_range(self) -> None:
        """Flush, then push every level's data downward once (manual, full).

        In pipeline mode the manual compaction runs on the calling thread
        but first takes the *manual-compaction slot*: the background thread
        stops picking automatic compactions (flushes still run) so the two
        never install conflicting edits over the same input files.
        """
        self._check_open()
        self._check_writable()
        self.flush()
        if self._bg:
            with self._mutex:
                self._manual_compaction = True
                self._work_cv.notify_all()
                try:
                    self._await_locked(
                        self._stall_cv,
                        lambda: not self._bg_compacting
                        or self._bg_error is not None,
                        "manual:exclusive")
                    self._raise_if_bg_failed()
                except BaseException:
                    self._manual_compaction = False
                    self._work_cv.notify_all()
                    raise
        try:
            self._compact_range_levels()
        finally:
            if self._bg:
                with self._mutex:
                    self._manual_compaction = False
                    self._work_cv.notify_all()

    def _compact_range_levels(self) -> None:
        for level in range(self.options.max_levels - 1):
            files = list(self.versions.current.levels[level])
            if not files:
                continue
            lo = min(meta.smallest_user_key for meta in files)
            hi = max(meta.largest_user_key for meta in files)
            inputs1 = self.versions.current.overlapping_files(level + 1, lo, hi)
            self.compactor.run(Compaction(level, files, inputs1))

    def checkpoint(self, dest_vfs: VFS, dest_name: str) -> int:
        """Write a consistent, independently openable copy of the database.

        SSTables are immutable, so a checkpoint is: flush the MemTable,
        then copy every live table byte-for-byte and write a fresh
        self-contained manifest describing them (RocksDB's Checkpoint
        mechanism).  Later writes to this database never touch the copy.
        Returns the number of files copied.
        """
        self._check_open()
        self.flush()
        from repro.lsm.manifest import ManifestWriter, table_file_name

        # Pinning the version keeps background compaction from deleting a
        # table file mid-copy (it becomes a zombie until we release).
        state = self._acquire_read_state() if self._bg else None
        try:
            version = self.versions.current if state is None \
                else state.version
            copied = 0
            edit = VersionEdit(
                log_number=0,
                next_file_number=self.versions.next_file_number,
                last_sequence=self.versions.last_sequence)
            for level, meta in version.all_files():
                payload = self.vfs.read_whole(
                    table_file_name(self.name, meta.file_number),
                    Category.OTHER)
                dest_vfs.write_whole(
                    table_file_name(dest_name, meta.file_number), payload,
                    Category.OTHER)
                edit.add_file(level, meta)
                copied += 1
            manifest = ManifestWriter(dest_vfs, dest_name, 1)
            manifest.log_edit(edit)
            manifest.install_as_current()
            manifest.close()
            return copied
        finally:
            if state is not None:
                self._release_read_state(state)

    def verify_integrity(self):
        """Audit the database's persistent state; see :mod:`repro.lsm.checker`.

        Checks manifest-vs-filesystem agreement (including orphaned engine
        files left by an interrupted crash recovery), per-table physical and
        logical invariants, and cross-table level invariants.  Returns an
        :class:`~repro.lsm.checker.IntegrityReport`; ``report.ok`` means the
        database is sound.
        """
        self._check_open()
        from repro.lsm.checker import verify_integrity

        return verify_integrity(self)

    def approximate_size(self) -> int:
        """Total bytes of all files belonging to this database."""
        return self.vfs.total_size(self.name + "/")

    def num_nonempty_levels(self) -> int:
        """The paper's L: populated on-disk levels, plus the MemTable if any."""
        levels = self.versions.current.num_nonempty_levels()
        if not self.memtable.is_empty():
            levels += 1
        return levels

    @property
    def io_stats(self):
        return self.vfs.stats

    def stats(self) -> dict[str, Any]:
        """Operational counters, one JSON-friendly dict (RocksDB's
        ``GetProperty``, condensed): compaction work, table-cache and
        block-cache hit rates, I/O meters and the level shape."""
        self._check_open()
        compaction = self.compactor.stats
        io = self.vfs.stats
        block_cache = self.table_cache.block_cache
        return {
            "levels": self.level_file_counts(),
            "last_sequence": self.versions.last_sequence,
            "memtable_entries": len(self.memtable),
            "memtable_bytes": self.memtable.approximate_memory_usage,
            "compaction": {
                "flush_count": compaction.flush_count,
                "compaction_count": compaction.compaction_count,
                "bytes_flushed": compaction.bytes_flushed,
                "bytes_compacted_in": compaction.bytes_compacted_in,
                "bytes_compacted_out": compaction.bytes_compacted_out,
                "entries_dropped": compaction.entries_dropped,
                "merges_folded": compaction.merges_folded,
                "compactions_by_level": dict(compaction.compactions_by_level),
            },
            "table_cache": self.table_cache.stats(),
            "block_cache": None if block_cache is None else {
                "capacity_bytes": block_cache.capacity,
                "used_bytes": block_cache.used_bytes,
                "hits": block_cache.hits,
                "misses": block_cache.misses,
            },
            "io": {
                "read_ops": io.read_ops,
                "write_ops": io.write_ops,
                "read_blocks": io.read_blocks,
                "write_blocks": io.write_blocks,
                "read_bytes": io.read_bytes,
                "write_bytes": io.write_bytes,
            },
            "pipeline": self._pipeline_stats_dict(),
            "corruption": {
                "events": self.corruption_stats.events,
                "tables_quarantined": self.corruption_stats.tables_quarantined,
                "quarantined": self.quarantined_tables(),
                "filter_degradations": self.table_cache.filter_degradations,
                "read_only": self._read_only,
                "read_only_reason": self._read_only_reason,
            },
        }

    def _pipeline_stats_dict(self) -> dict[str, Any]:
        pipeline = self.pipeline_stats
        with self._mutex:
            version = self.versions.current
            # Queue depth: pending immutable MemTable plus levels whose
            # score says "compact now" — the work the background thread
            # still owes.
            depth = 1 if self.imm is not None else 0
            if version.num_files(0) >= self.options.l0_compaction_trigger:
                depth += 1
            for level in range(1, self.options.max_levels - 1):
                if version.level_size(level) \
                        >= self.options.max_bytes_for_level(level):
                    depth += 1
            groups = pipeline.write_groups
            return {
                "background": self._bg,
                "imm_pending": 1 if self.imm is not None else 0,
                "compaction_queue_depth": depth,
                "stall_events": pipeline.stall_events,
                "stall_seconds": pipeline.stall_seconds,
                "slowdown_events": pipeline.slowdown_events,
                "write_groups": groups,
                "group_commit_batches": pipeline.group_commit_batches,
                "group_commit_ops": pipeline.group_commit_ops,
                "mean_group_batches": (
                    pipeline.group_commit_batches / groups if groups else 0.0),
                "max_group_batches": pipeline.max_group_batches,
                "bg_flushes": pipeline.bg_flushes,
                "bg_compactions": pipeline.bg_compactions,
                "bg_error": (None if self._bg_error is None
                             else repr(self._bg_error)),
                "workers": (None if self._executor is None
                            else self._executor.stats()),
                "shm_cache": (None if self._shm_cache is None
                              else self._shm_cache.stats_dict()),
            }

    def level_file_counts(self) -> list[int]:
        return [len(files) for files in self.versions.current.levels]

    def debug_string(self) -> str:
        """Human-readable internal state (RocksDB's ``GetProperty`` spirit).

        Level shapes, MemTable pressure, compaction counters and the I/O
        meters — everything needed to understand what the tree is doing.
        """
        version = self.versions.current
        stats = self.compactor.stats
        io = self.vfs.stats
        lines = [
            f"-- DB {self.name} --",
            f"last_sequence: {self.versions.last_sequence}",
            f"memtable: {len(self.memtable)} entries / "
            f"{self.memtable.approximate_memory_usage:,} of "
            f"{self.options.memtable_budget:,} bytes",
        ]
        for level, files in enumerate(version.levels):
            if not files:
                continue
            budget = self.options.max_bytes_for_level(level)
            budget_text = "n/a" if budget == float("inf") \
                else f"{budget:,.0f}"
            lines.append(
                f"L{level}: {len(files):3d} files "
                f"{version.level_size(level):>10,} bytes "
                f"(budget {budget_text})")
        lines.append(
            f"flushes: {stats.flush_count}  "
            f"compactions: {stats.compaction_count} "
            f"{dict(sorted(stats.compactions_by_level.items()))}")
        lines.append(
            f"compacted: {stats.bytes_compacted_in:,} in / "
            f"{stats.bytes_compacted_out:,} out  "
            f"dropped entries: {stats.entries_dropped}  "
            f"merges folded: {stats.merges_folded}")
        lines.append(
            f"io: {io.read_blocks:,} read blocks / "
            f"{io.write_blocks:,} write blocks "
            f"(reads by category: {dict(sorted(io.reads_by_category.items()))})")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        files = sum(self.level_file_counts())
        return (f"DB(name={self.name!r}, files={files}, "
                f"last_seq={self.versions.last_sequence})")
