"""Key encodings and low-level integer codecs.

The engine stores *internal keys*: a user key extended with a 64-bit trailer
packing the entry's sequence number and its kind (value, deletion tombstone
or merge operand).  Exactly as in LevelDB, internal keys for the same user
key are ordered newest-first, so a forward scan over a sorted run yields the
most recent visible version of each user key first.

This module also provides the varint32/varint64 codecs used throughout the
block, SSTable and WAL formats.
"""

from __future__ import annotations

import struct
from typing import NamedTuple

# Value kinds.  The numeric order matters: when two internal keys share a
# user key *and* a sequence number (which a correct writer never produces),
# the comparator falls back to kind so ordering stays total.
KIND_DELETE = 0
KIND_VALUE = 1
KIND_MERGE = 2

_KIND_NAMES = {KIND_DELETE: "delete", KIND_VALUE: "value", KIND_MERGE: "merge"}

#: Kind to use in *seek probes*.  At equal (user_key, seq), higher kinds
#: sort first (LevelDB's kValueTypeForSeek), so a probe built with the
#: highest kind positions at-or-before every real entry of that sequence.
KIND_FOR_SEEK = KIND_MERGE

#: Largest representable sequence number (56 bits, as in LevelDB).
MAX_SEQUENCE = (1 << 56) - 1

_TRAILER = struct.Struct(">Q")


class InternalKey(NamedTuple):
    """A decoded internal key: ``(user_key, seq, kind)``."""

    user_key: bytes
    seq: int
    kind: int

    def encode(self) -> bytes:
        return pack_internal_key(self.user_key, self.seq, self.kind)

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES.get(self.kind, f"unknown({self.kind})")

    def sort_key(self) -> tuple[bytes, int]:
        """Tuple that sorts internal keys: user key ascending, seq descending.

        Newest entries (largest seq) come first within a user key, mirroring
        LevelDB's ``InternalKeyComparator``.  The second element is the
        *negated trailer tag* ``-((seq << 8) | kind)``: one integer compare
        gives seq-descending order with kind-descending tie-break, the same
        total order as the former ``(user_key, MAX_SEQUENCE - seq, -kind)``
        triple but with one fewer tuple slot to allocate and compare.
        """
        return (self.user_key, -((self.seq << 8) | self.kind))


def pack_internal_key(user_key: bytes, seq: int, kind: int) -> bytes:
    """Encode ``user_key`` plus an 8-byte big-endian ``(seq << 8) | kind`` trailer."""
    if not 0 <= seq <= MAX_SEQUENCE:
        raise ValueError(f"sequence number out of range: {seq}")
    if kind not in _KIND_NAMES:
        raise ValueError(f"invalid value kind: {kind}")
    return user_key + _TRAILER.pack((seq << 8) | kind)


def unpack_internal_key(data: bytes) -> InternalKey:
    """Decode an internal key produced by :func:`pack_internal_key`."""
    if len(data) < 8:
        raise ValueError(f"internal key too short: {len(data)} bytes")
    tag = _TRAILER.unpack_from(data, len(data) - 8)[0]
    return InternalKey(data[:-8], tag >> 8, tag & 0xFF)


def internal_sort_key(encoded: bytes) -> tuple[bytes, int]:
    """Sort key for an *encoded* internal key (see :meth:`InternalKey.sort_key`).

    Computed straight from the encoded bytes — no :class:`InternalKey`
    is allocated.  This is the engine's hottest comparison primitive
    (every block seek, index binary search and merge step goes through
    it), so it does exactly two allocations: one user-key slice and one
    result tuple.
    """
    if len(encoded) < 8:
        raise ValueError(f"internal key too short: {len(encoded)} bytes")
    return (encoded[:-8], -_TRAILER.unpack_from(encoded, len(encoded) - 8)[0])


def compare_internal(a: bytes, b: bytes) -> int:
    """Three-way comparison of two encoded internal keys."""
    ka = internal_sort_key(a)
    kb = internal_sort_key(b)
    if ka < kb:
        return -1
    if ka > kb:
        return 1
    return 0


# ---------------------------------------------------------------------------
# Varint codecs (LEB128, as used by LevelDB's on-disk formats)
# ---------------------------------------------------------------------------


#: Single-byte varints (values 0..127) are the overwhelmingly common case
#: in block headers (shared/non-shared/value_len); serve them from a table.
_VARINT_ONE_BYTE = [bytes([value]) for value in range(128)]


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a little-endian base-128 varint."""
    if 0 <= value < 128:
        return _VARINT_ONE_BYTE[value]
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` at ``offset``.

    Returns ``(value, new_offset)``.  Raises :class:`ValueError` on truncated
    input so callers can surface a :class:`~repro.lsm.errors.CorruptionError`
    with context.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_length_prefixed(blob: bytes) -> bytes:
    """Encode ``blob`` as ``varint(len) || blob``."""
    return encode_varint(len(blob)) + blob


def decode_length_prefixed(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Decode a length-prefixed blob; returns ``(blob, new_offset)``."""
    length, pos = decode_varint(data, offset)
    end = pos + length
    if end > len(data):
        raise ValueError("truncated length-prefixed blob")
    return bytes(data[pos:end]), end
