"""End-to-end Mixed workloads (Table 7b) with post-hoc consistency checks."""

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.options import Options
from repro.workloads.generator import MIXED_RATIOS, MixedWorkload
from repro.workloads.ops import Put
from repro.workloads.runner import WorkloadRunner
from repro.workloads.tweets import SeedProfile


def _options():
    return Options(block_size=1024, sstable_target_size=8 * 1024,
                   memtable_budget=8 * 1024, l1_target_size=32 * 1024)


def _final_state(workload):
    state = {}
    for op in workload.operations():
        if isinstance(op, Put):
            state[op.key] = op.document
    return state


@pytest.mark.parametrize("workload_name", sorted(MIXED_RATIOS))
@pytest.mark.parametrize(
    "kind", [IndexKind.EMBEDDED, IndexKind.LAZY, IndexKind.COMPOSITE],
    ids=lambda k: k.value)
def test_mixed_workload_leaves_consistent_state(workload_name, kind):
    workload = MixedWorkload(
        num_operations=2500,
        ratios=MIXED_RATIOS[workload_name],
        profile=SeedProfile(num_users=50),
        seed=42,
    )
    db = SecondaryIndexedDB.open_memory(
        indexes={"UserID": kind}, options=_options())
    report = WorkloadRunner(db, sample_every=500).run(workload.operations())
    assert report.total_ops == 2500

    # Replay the deterministic stream to get ground truth, then verify the
    # secondary index agrees with it for a sample of users.
    state = _final_state(MixedWorkload(
        num_operations=2500, ratios=MIXED_RATIOS[workload_name],
        profile=SeedProfile(num_users=50), seed=42))
    by_user = {}
    for key, doc in state.items():
        by_user.setdefault(doc["UserID"], set()).add(key)
    checked = 0
    for user, keys in sorted(by_user.items()):
        if checked >= 10:
            break
        got = {r.key for r in db.lookup("UserID", user,
                                        early_termination=False)}
        assert got == keys, (workload_name, kind, user)
        checked += 1
    db.close()


def test_update_heavy_stresses_validity_checks():
    """Update-heavy runs must filter stale index entries correctly."""
    workload = MixedWorkload(
        num_operations=2000, ratios=MIXED_RATIOS["update_heavy"],
        profile=SeedProfile(num_users=10), seed=7)
    db = SecondaryIndexedDB.open_memory(
        indexes={"UserID": IndexKind.LAZY}, options=_options())
    WorkloadRunner(db).run(workload.operations())
    state = _final_state(MixedWorkload(
        num_operations=2000, ratios=MIXED_RATIOS["update_heavy"],
        profile=SeedProfile(num_users=10), seed=7))
    for user in [f"u{i:05d}" for i in range(5)]:
        got = {r.key for r in db.lookup("UserID", user,
                                        early_termination=False)}
        want = {key for key, doc in state.items() if doc["UserID"] == user}
        assert got == want
    db.close()
