"""Property-based tests: the store behaves like a dict, indexes like filters.

Hypothesis drives random operation sequences; the invariants are:

* the DB's visible state equals a dict applying the same operations;
* every index's exhaustive LOOKUP equals a brute-force filter over that
  dict, ordered by recency;
* bloom filters never produce false negatives;
* the posting merge operator is associative (required for partial merges).
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.core.posting import posting_merge_operator, single_posting_fragment
from repro.lsm.bloom import BloomFilterBuilder, bloom_may_contain
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.skiplist import SkipList

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _tiny_options(**overrides):
    base = dict(block_size=512, sstable_target_size=2 * 1024,
                memtable_budget=2 * 1024, l1_target_size=8 * 1024,
                compression="none")
    base.update(overrides)
    return Options(**base)


# One operation: (op_code, key_id, value_id)
_ops = st.lists(
    st.tuples(st.sampled_from(["put", "delete"]),
              st.integers(min_value=0, max_value=30),
              st.integers(min_value=0, max_value=5)),
    max_size=300)


class TestDBEqualsDict:
    @given(_ops)
    @_SETTINGS
    def test_store_matches_dict_model(self, operations):
        db = DB.open_memory(_tiny_options())
        model = {}
        for op, key_id, value_id in operations:
            key = f"k{key_id:03d}".encode()
            if op == "put":
                value = (f"v{value_id}" * 10).encode()
                db.put(key, value)
                model[key] = value
            else:
                db.delete(key)
                model.pop(key, None)
        assert dict(db.scan()) == model
        for key_id in range(31):
            key = f"k{key_id:03d}".encode()
            assert db.get(key) == model.get(key)
        db.close()

    @given(_ops)
    @_SETTINGS
    def test_store_matches_dict_after_compaction(self, operations):
        db = DB.open_memory(_tiny_options())
        model = {}
        for op, key_id, value_id in operations:
            key = f"k{key_id:03d}".encode()
            if op == "put":
                value = (f"v{value_id}" * 10).encode()
                db.put(key, value)
                model[key] = value
            else:
                db.delete(key)
                model.pop(key, None)
        db.compact_range()
        assert dict(db.scan()) == model
        db.close()


class TestIndexesEqualFilters:
    @given(_ops, st.sampled_from([IndexKind.EMBEDDED, IndexKind.EAGER,
                                  IndexKind.LAZY, IndexKind.COMPOSITE]))
    @_SETTINGS
    def test_lookup_equals_bruteforce(self, operations, kind):
        db = SecondaryIndexedDB.open_memory(
            indexes={"UserID": kind}, options=_tiny_options())
        model = {}
        seqs = {}
        for op, key_id, value_id in operations:
            key = f"k{key_id:03d}"
            if op == "put":
                doc = {"UserID": f"u{value_id}", "Body": "b" * 20}
                seqs[key] = db.put(key, doc)
                model[key] = doc
            else:
                db.delete(key)
                model.pop(key, None)
        for value_id in range(6):
            value = f"u{value_id}"
            got = [(r.seq, r.key) for r in db.lookup(
                "UserID", value, early_termination=False)]
            want = sorted(((seqs[key], key) for key, doc in model.items()
                           if doc["UserID"] == value), reverse=True)
            assert got == want
        db.close()


class TestBloomNeverLies:
    @given(st.sets(st.binary(min_size=1, max_size=20), max_size=200),
           st.integers(min_value=2, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_no_false_negatives(self, keys, bits_per_key):
        builder = BloomFilterBuilder(bits_per_key)
        for key in keys:
            builder.add(key)
        blob = builder.finish()
        assert all(bloom_may_contain(blob, key) for key in keys)


class TestMergeOperatorAssociativity:
    _fragment = st.builds(
        single_posting_fragment,
        key=st.text(min_size=1, max_size=5),
        seq=st.integers(min_value=0, max_value=1000),
        deleted=st.booleans())

    @given(_fragment, _fragment, _fragment)
    @settings(max_examples=100, deadline=None)
    def test_associative(self, a, b, c):
        left = posting_merge_operator(
            b"k", [posting_merge_operator(b"k", [a, b]), c])
        right = posting_merge_operator(
            b"k", [a, posting_merge_operator(b"k", [b, c])])
        assert json.loads(left) == json.loads(right)


class TestSkipListSorted:
    @given(st.lists(st.integers(min_value=0, max_value=10**6),
                    unique=True, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_iteration_sorted(self, keys):
        sl = SkipList()
        for key in keys:
            sl.insert(key, None)
        assert [k for k, _v in sl] == sorted(keys)
