"""Leveled compaction, LevelDB-style.

* A MemTable flush writes one SSTable into level 0; level-0 files may
  overlap each other.
* When level 0 accumulates ``l0_compaction_trigger`` files, or level *i*'s
  total size exceeds its budget, the level is merged into level *i+1*.
* Within a level, the file to compact is chosen **round-robin by key range**
  (the ``compact_pointer`` of LevelDB), which is exactly the behaviour the
  paper leans on when discussing the Composite index's loss of time order
  ("a compaction in a level takes place as round-robin basis").

During the merge, obsolete versions are dropped, tombstones are elided once
they reach the bottom-most level that could contain their key, and — the
hook the Lazy index relies on — runs of ``KIND_MERGE`` operands for the
same key are folded through the configured merge operator ("the old
postings list ... is merged later, during the periodic compaction phase").

Live snapshots suppress folding and dropping conservatively: correctness
first, space later.

The merge pipeline itself (stream -> group -> keep/fold/elide -> cut into
output files) is module-level and parameterised, not a method of
:class:`Compactor`: compaction worker *processes*
(:mod:`repro.lsm.procpool`) execute exactly the same code over their own
VFS handles, which is what makes worker output byte-identical to inline
output by construction rather than by parallel maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lsm.errors import InvalidArgumentError
from repro.lsm.iterator import merge_streams
from repro.lsm.keys import (
    KIND_DELETE,
    KIND_MERGE,
    KIND_VALUE,
    InternalKey,
    MAX_SEQUENCE,
    pack_internal_key,
)
from repro.lsm.manifest import table_file_name
from repro.lsm.sstable import TableBuilder
from repro.lsm.vfs import Category
from repro.lsm.version import FileMetaData, Version, VersionEdit, VersionSet


@dataclass
class Compaction:
    """A unit of compaction work: inputs at two adjacent levels."""

    level: int
    inputs0: list[FileMetaData]
    inputs1: list[FileMetaData]

    @property
    def output_level(self) -> int:
        return self.level + 1

    def input_files(self) -> list[tuple[int, FileMetaData]]:
        return ([(self.level, meta) for meta in self.inputs0]
                + [(self.output_level, meta) for meta in self.inputs1])

    def total_input_bytes(self) -> int:
        return sum(meta.file_size for _lvl, meta in self.input_files())


def pick_compaction(versions: VersionSet) -> Compaction | None:
    """Choose what to compact next, or ``None`` if nothing is due."""
    version = versions.current
    score, level = version.compaction_score()
    if score < 1.0:
        return None
    if level >= versions.options.max_levels - 1:
        return None

    if versions.options.compaction_style == "full_level":
        # AsterixDB-style: the whole level merges into the whole next level.
        inputs0 = list(version.levels[level])
        if not inputs0:
            return None
        inputs1 = list(version.levels[level + 1])
        return Compaction(level, inputs0, inputs1)

    if level == 0:
        inputs0 = list(version.levels[0])
        if not inputs0:
            return None
        lo = min(meta.smallest_user_key for meta in inputs0)
        hi = max(meta.largest_user_key for meta in inputs0)
        inputs0 = version.overlapping_files(0, lo, hi)
    else:
        inputs0 = [_round_robin_file(versions, level)]

    lo = min(meta.smallest_user_key for meta in inputs0)
    hi = max(meta.largest_user_key for meta in inputs0)
    inputs1 = versions.current.overlapping_files(level + 1, lo, hi)
    return Compaction(level, inputs0, inputs1)


def _round_robin_file(versions: VersionSet, level: int) -> FileMetaData:
    """LevelDB's compact-pointer choice: first file past the last compacted key."""
    files = versions.current.levels[level]
    pointer = versions.compact_pointers[level]
    if pointer is not None:
        for meta in files:
            if meta.largest > pointer:
                return meta
    return files[0]


@dataclass
class CompactionStats:
    """Aggregate counters, surfaced via :attr:`repro.lsm.db.DB.stats`."""

    flush_count: int = 0
    compaction_count: int = 0
    bytes_flushed: int = 0
    bytes_compacted_in: int = 0
    bytes_compacted_out: int = 0
    entries_dropped: int = 0
    merges_folded: int = 0
    compactions_by_level: dict[int, int] = field(default_factory=dict)


class Compactor:
    """Executes flushes and compactions for one DB instance.

    The collaborator protocol (rather than importing ``DB``) keeps this
    module independently testable: it needs a VFS, options, the version
    set, a table cache, a way to log version edits, and the oldest live
    snapshot sequence number.
    """

    def __init__(self, vfs, db_name: str, options, versions: VersionSet,
                 table_cache, log_and_apply, oldest_snapshot_seq,
                 retire_files=None) -> None:
        self.vfs = vfs
        self.db_name = db_name
        self.options = options
        self.versions = versions
        self.table_cache = table_cache
        self._log_and_apply = log_and_apply
        self._oldest_snapshot_seq = oldest_snapshot_seq
        # ``retire_files(file_numbers)`` disposes of compaction inputs once
        # the edit removing them is applied.  The default deletes them on
        # the spot; a DB running background compaction passes a callback
        # that defers deletion while any pinned version still reads them.
        self._retire_files = retire_files or self._retire_files_now
        self.stats = CompactionStats()
        # When set (a ProcessCompactionExecutor), compactions are shipped to
        # worker processes; the coordinator still applies the version edit
        # and retires inputs locally, so stall/crash semantics are shared
        # with the inline path.  Flushes never dispatch: they read the live
        # MemTable, which exists only in this process.
        self.executor = None

    def _step(self, label: str) -> None:
        hook = self.options.step_hook
        if hook is not None:
            hook(label)

    def _retire_files_now(self, file_numbers) -> None:
        for file_number in file_numbers:
            self.table_cache.evict(file_number)
            self.vfs.delete(table_file_name(self.db_name, file_number))

    # -- flush ----------------------------------------------------------------

    def flush_memtable(self, memtable,
                       log_number: int | None = None) -> FileMetaData | None:
        """Write the MemTable's contents as one new level-0 SSTable.

        ``log_number``, when given, rides along in the *same* version edit
        that makes the table live.  The pairing is a crash-consistency
        invariant: if the table (holding the WAL's contents) commits, the
        WAL is simultaneously retired — recording them in separate edits
        would let a crash land between the two, and recovery would then
        replay a WAL whose writes are already in the table (merge operands
        would fold twice).
        """
        if memtable.is_empty():
            return None
        self._step("flush:build")
        file_number = self.versions.new_file_number()
        name = table_file_name(self.db_name, file_number)
        out = self.vfs.create(name)
        from repro.lsm.compression import compressor_for

        builder = TableBuilder(self.options, out,
                               compressor_for(self.options.compression),
                               Category.FLUSH)
        for entry in memtable:
            key = pack_internal_key(entry.user_key, entry.seq, entry.kind)
            builder.add(key, entry.value)
        props = builder.finish()
        # The manifest edit below durably records this table as live; the
        # table's bytes must reach stable storage first, or a crash could
        # leave a live-but-torn file.
        out.sync()
        out.close()
        self._step("flush:install")
        meta = FileMetaData(
            file_number=file_number,
            file_size=props.file_size,
            smallest=props.smallest,
            largest=props.largest,
            min_seq=props.min_seq,
            max_seq=props.max_seq,
            num_entries=props.num_entries,
            secondary_zonemaps=props.secondary_zonemaps,
        )
        edit = VersionEdit(log_number=log_number)
        edit.add_file(0, meta)
        self._log_and_apply(edit)
        self.stats.flush_count += 1
        self.stats.bytes_flushed += props.file_size
        return meta

    # -- compaction -------------------------------------------------------------

    def maybe_compact(self) -> int:
        """Run compactions until no level is over budget; returns the count."""
        ran = 0
        while True:
            compaction = pick_compaction(self.versions)
            if compaction is None:
                return ran
            self.run(compaction)
            ran += 1

    def run(self, compaction: Compaction) -> list[FileMetaData]:
        """Merge the input files into new files at the output level."""
        oldest_snapshot = self._oldest_snapshot_seq()
        if self.executor is not None and self.options.step_hook is None:
            return self._run_remote(compaction, oldest_snapshot)
        return self._run_inline(compaction, oldest_snapshot)

    def _run_inline(self, compaction: Compaction,
                    oldest_snapshot: int) -> list[FileMetaData]:
        base_version = self.versions.current
        streams = []
        for _level, meta in compaction.input_files():
            table = self.table_cache.get(meta.file_number)
            streams.append(table_entry_stream(table))

        outputs: list[FileMetaData] = []
        self._step("compact:merge")

        def open_output():
            file_number = self.versions.new_file_number()
            name = table_file_name(self.db_name, file_number)
            return file_number, self.vfs.create(name), None

        writer = CompactionOutputWriter(
            self.options, open_output, outputs,
            on_output=lambda: self._step("compact:output"))
        merge_entry_streams(
            self.options, streams, oldest_snapshot,
            lambda user_key: self._is_base_level(
                user_key, compaction, base_version),
            writer, self.stats)
        return self._install_outputs(compaction, outputs)

    def _run_remote(self, compaction: Compaction,
                    oldest_snapshot: int) -> list[FileMetaData]:
        """Ship the merge to a worker process; install its result locally.

        The worker returns manifest-ready :class:`FileMetaData` documents;
        the version edit, retirement and stall interactions run through
        exactly the same code as the inline path, so crash semantics are
        unchanged — a job that dies installs nothing and its partial
        outputs are deleted by the executor.
        """
        base_version = self.versions.current
        job = build_compaction_job(
            self.db_name, compaction, base_version, oldest_snapshot,
            self.options)
        self._step("compact:merge")
        result = self.executor.run_job(
            job, allocate=self.versions.new_file_number)
        outputs = [FileMetaData.from_json(doc) for doc in result["outputs"]]
        self.stats.entries_dropped += result.get("entries_dropped", 0)
        self.stats.merges_folded += result.get("merges_folded", 0)
        return self._install_outputs(compaction, outputs)

    def _install_outputs(self, compaction: Compaction,
                         outputs: list[FileMetaData]) -> list[FileMetaData]:
        edit = VersionEdit()
        for level, meta in compaction.input_files():
            edit.delete_file(level, meta.file_number)
        for meta in outputs:
            edit.add_file(compaction.output_level, meta)
        if compaction.inputs0:
            pointer = max(meta.largest for meta in compaction.inputs0)
            edit.compact_pointers.append((compaction.level, pointer))
        self._step("compact:install")
        self._log_and_apply(edit)

        self._retire_files([meta.file_number
                            for _level, meta in compaction.input_files()])

        self.stats.compaction_count += 1
        level_key = compaction.level
        self.stats.compactions_by_level[level_key] = (
            self.stats.compactions_by_level.get(level_key, 0) + 1)
        self.stats.bytes_compacted_in += compaction.total_input_bytes()
        self.stats.bytes_compacted_out += sum(m.file_size for m in outputs)
        return outputs

    def _is_base_level(self, user_key: bytes, compaction: Compaction,
                       base_version: Version) -> bool:
        """No level deeper than the output could contain ``user_key``."""
        for level in range(compaction.output_level + 1,
                           self.options.max_levels):
            if base_version.files_containing_key(level, user_key):
                return False
        return True


def build_compaction_job(db_name: str, compaction: Compaction,
                         base_version: Version, oldest_snapshot: int,
                         options) -> dict:
    """The JSON-safe job description a worker process merges from.

    Everything a worker needs that is not already on disk: the input file
    metadata (levels + manifest documents), the snapshot horizon, and — so
    the worker can evaluate the tombstone-elision predicate without the
    coordinator's :class:`Version` — the user-key bounds of every file in
    levels deeper than the output.  The executor stamps in the VFS root,
    the options snapshot and the shared-cache name before dispatch.
    """
    deeper_bounds = []
    for level in range(compaction.output_level + 1, options.max_levels):
        files = base_version.levels[level]
        if files:
            deeper_bounds.append([level, [
                [meta.smallest_user_key.hex(), meta.largest_user_key.hex()]
                for meta in files]])
    return {
        "db_name": db_name,
        "level": compaction.level,
        "output_level": compaction.output_level,
        "inputs": [[level, meta.to_json()]
                   for level, meta in compaction.input_files()],
        "deeper_bounds": deeper_bounds,
        "oldest_snapshot": oldest_snapshot,
    }


def bounds_base_predicate(deeper_bounds):
    """``is_base(user_key)`` from serialized deeper-level key bounds.

    Levels >= 1 are sorted and disjoint, so containment is one bisect per
    level — the same binary search :meth:`Version.files_containing_key`
    performs, evaluated against shipped bounds instead of live metadata.
    """
    from bisect import bisect_left

    levels = []
    for _level, pairs in deeper_bounds:
        bounds = [(bytes.fromhex(lo), bytes.fromhex(hi)) for lo, hi in pairs]
        levels.append((bounds, [hi for _lo, hi in bounds]))

    def is_base(user_key: bytes) -> bool:
        for bounds, largests in levels:
            index = bisect_left(largests, user_key)
            if index < len(bounds) and bounds[index][0] <= user_key:
                return False
        return True

    return is_base


def process_key_group(options, user_key: bytes,
                      group: list[tuple[InternalKey, bytes]],
                      oldest_snapshot: int, is_base_of,
                      stats: CompactionStats
                      ) -> list[tuple[InternalKey, bytes]]:
    """Decide which versions of one user key survive the merge.

    ``is_base_of(user_key)`` answers "could no level deeper than the output
    contain this key?" — the tombstone-elision and full-fold predicate.
    """
    kept: list[tuple[InternalKey, bytes]] = []
    for ikey, value in group:
        kept.append((ikey, value))
        # A non-merge entry visible to every snapshot shadows all older
        # versions; merge operands never shadow (they need their base).
        if ikey.kind != KIND_MERGE and ikey.seq <= oldest_snapshot:
            break
    stats.entries_dropped += len(group) - len(kept)

    if oldest_snapshot != MAX_SEQUENCE:
        # Live snapshots: be conservative — no folding, no elision.
        return kept

    is_base = is_base_of(user_key)
    operands = [value for ikey, value in kept if ikey.kind == KIND_MERGE]
    if operands:
        base_entry = kept[-1] if kept[-1][0].kind != KIND_MERGE else None
        newest_seq = kept[0][0].seq
        folded = fold_operands(options, user_key, operands, base_entry)
        stats.merges_folded += len(operands)
        if base_entry is not None or is_base:
            # A base was present in the inputs (or cannot exist deeper):
            # the fold is a full merge and becomes a plain value.
            kept = [(InternalKey(user_key, newest_seq, KIND_VALUE), folded)]
        else:
            # No base in sight and deeper levels may hold one: emit a
            # single combined operand (partial merge — requires the
            # operator to be associative, which posting-list union is).
            kept = [(InternalKey(user_key, newest_seq, KIND_MERGE), folded)]
    if (len(kept) == 1 and kept[0][0].kind == KIND_DELETE and is_base):
        stats.entries_dropped += 1
        return []
    return kept


def fold_operands(options, user_key: bytes,
                  operands_newest_first: list[bytes],
                  base_entry: tuple[InternalKey, bytes] | None
                  ) -> bytes | None:
    operator = options.merge_operator
    if operator is None:
        raise InvalidArgumentError(
            "merge entries present but no merge_operator configured")
    oldest_first = list(reversed(operands_newest_first))
    if base_entry is not None and base_entry[0].kind == KIND_VALUE:
        oldest_first.insert(0, base_entry[1])
    return operator(user_key, oldest_first)


def merge_entry_streams(options, streams, oldest_snapshot: int, is_base_of,
                        writer: "CompactionOutputWriter",
                        stats: CompactionStats) -> None:
    """The whole merge loop: k-way merge, per-key policy, output cutting.

    This is the function both the inline compactor and worker processes
    run; byte identity of their outputs follows from sharing it.
    """
    merged = merge_streams(streams)
    for user_key, group in _group_by_user_key(merged):
        kept = process_key_group(options, user_key, group, oldest_snapshot,
                                 is_base_of, stats)
        for ikey, value in kept:
            writer.add(ikey, value)
    writer.finish()


def table_entry_stream(table):
    """Entry stream over a whole table, charged as compaction I/O."""
    from repro.lsm.keys import unpack_internal_key

    for block_index in range(table.num_data_blocks):
        block = table.read_data_block(block_index, Category.COMPACTION)
        for ikey_bytes, value in block:
            yield unpack_internal_key(ikey_bytes), value


def _group_by_user_key(merged):
    """Group a merged entry stream into per-user-key lists (newest first)."""
    current_key: bytes | None = None
    group: list[tuple[InternalKey, bytes]] = []
    for ikey, value in merged:
        if ikey.user_key != current_key:
            if group:
                yield current_key, group
            current_key = ikey.user_key
            group = []
        group.append((ikey, value))
    if group:
        yield current_key, group


class CompactionOutputWriter:
    """Cuts compaction output into files of ``sstable_target_size``.

    ``open_output()`` supplies each file: it returns ``(file_number,
    writable, block_observer)``.  Inline that is a local allocation +
    ``vfs.create``; in a worker it is an allocation round-trip over the
    coordinator pipe plus a shared-cache pre-warm observer.  Everything
    else — cut threshold, sync-before-install, metadata assembly — is
    common, which the byte-identity guarantee rides on.
    """

    def __init__(self, options, open_output,
                 outputs: list[FileMetaData], on_output=None) -> None:
        self.options = options
        self.open_output = open_output
        self.outputs = outputs
        self.on_output = on_output
        self._builder: TableBuilder | None = None
        self._out = None
        self._file_number = 0

    def add(self, ikey: InternalKey, value: bytes) -> None:
        if self._builder is None:
            self._open()
        assert self._builder is not None
        self._builder.add(ikey.encode(), value)
        if self._builder.estimated_file_size >= \
                self.options.sstable_target_size:
            self._close()

    def _open(self) -> None:
        from repro.lsm.compression import compressor_for

        self._file_number, self._out, observer = self.open_output()
        self._builder = TableBuilder(
            self.options, self._out,
            compressor_for(self.options.compression),
            Category.COMPACTION, block_observer=observer)

    def _close(self) -> None:
        if self._builder is None:
            return
        props = self._builder.finish()
        self._out.sync()  # durable before the manifest edit names it live
        self._out.close()
        self.outputs.append(FileMetaData(
            file_number=self._file_number,
            file_size=props.file_size,
            smallest=props.smallest,
            largest=props.largest,
            min_seq=props.min_seq,
            max_seq=props.max_seq,
            num_entries=props.num_entries,
            secondary_zonemaps=props.secondary_zonemaps,
        ))
        self._builder = None
        self._out = None
        if self.on_output is not None:
            self.on_output()

    def abort(self) -> None:
        """Close the in-flight output handle without finishing the table.

        Failure path only: the worker calls this before reporting a failed
        job so the coordinator can delete every allocated output file.
        """
        if self._out is not None:
            try:
                self._out.close()
            except (OSError, ValueError):
                pass
        self._builder = None
        self._out = None

    def finish(self) -> None:
        self._close()
