"""``python -m repro`` — the maintenance CLI (see :mod:`repro.tools`)."""

import sys

from repro.tools import main

if __name__ == "__main__":
    sys.exit(main())
