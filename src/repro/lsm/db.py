"""The database: LevelDB's public surface, plus the probes LevelDB++ needs.

:class:`DB` wires together the MemTable, WAL, SSTables, versioned manifest
and compactor into a single-node key-value store with the three base
operations of the paper's Table 1 — ``PUT(k, v)``, ``GET(k)``, ``DEL(k)`` —
plus:

* ``merge(k, operand)``: RocksDB-style merge writes, the mechanism behind
  the Lazy index's append-only posting-list updates;
* ``scan(lo, hi)``: user-visible range iteration (the "range query API on
  primary key" the Eager index uses for RANGELOOKUP);
* ``scan_level`` / ``fragments_by_level``: raw per-level access, which the
  Lazy and Composite indexes need for level-at-a-time traversal;
* ``key_maybe_in_levels``: the in-memory presence probe behind the
  Embedded index's GetLite validity check.

Writes are synchronous and single-threaded (the paper chose LevelDB for
exactly this property, to isolate index costs); a MemTable flush and any
due compactions run inline in the writing call.
"""

from __future__ import annotations

import heapq
import logging
from operator import itemgetter
from typing import Any, Callable, Iterator

from repro.lsm.compaction import Compaction, Compactor
from repro.lsm.errors import DBClosedError, InvalidArgumentError
from repro.lsm.iterator import merge_streams
from repro.lsm.keys import (
    KIND_DELETE,
    KIND_FOR_SEEK,
    KIND_MERGE,
    KIND_VALUE,
    InternalKey,
    MAX_SEQUENCE,
    decode_length_prefixed,
    decode_varint,
    encode_length_prefixed,
    encode_varint,
    pack_internal_key,
)
from repro.lsm.manifest import (
    ManifestWriter,
    current_tmp_file_name,
    log_file_name,
    recover_version_set,
)
from repro.lsm.memtable import MemTable
from repro.lsm.options import Options
from repro.lsm.tablecache import TableCache
from repro.lsm.vfs import Category, MemoryVFS, VFS
from repro.lsm.version import VersionEdit, VersionSet
from repro.lsm.wal import LogReader, LogWriter

FlushListener = Callable[[int], None]

logger = logging.getLogger(__name__)


def _parse_file_number(base: str) -> int | None:
    """File number encoded in a ``NNNNNN.ldb``/``NNNNNN.log`` basename.

    Returns ``None`` for names the engine did not produce (editor
    droppings, half-renamed scratch files): recovery must tolerate them,
    not crash on them.
    """
    stem = base.split(".")[0]
    return int(stem) if stem.isdigit() else None


class WriteBatch:
    """An atomic group of writes, applied under consecutive sequence numbers."""

    def __init__(self) -> None:
        self.ops: list[tuple[int, bytes, bytes]] = []

    def put(self, key: bytes, value: bytes) -> "WriteBatch":
        self.ops.append((KIND_VALUE, key, value))
        return self

    def delete(self, key: bytes) -> "WriteBatch":
        self.ops.append((KIND_DELETE, key, b""))
        return self

    def merge(self, key: bytes, operand: bytes) -> "WriteBatch":
        self.ops.append((KIND_MERGE, key, operand))
        return self

    def __len__(self) -> int:
        return len(self.ops)

    def encode(self, start_seq: int) -> bytes:
        out = bytearray(encode_varint(start_seq))
        out += encode_varint(len(self.ops))
        # Length prefixes are appended directly (not via
        # encode_length_prefixed) to skip one intermediate bytes object
        # per field — this runs once per write batch on the WAL path.
        for kind, key, value in self.ops:
            out.append(kind)
            out += encode_varint(len(key))
            out += key
            out += encode_varint(len(value))
            out += value
        return bytes(out)

    @classmethod
    def decode(cls, payload: bytes) -> tuple["WriteBatch", int]:
        start_seq, pos = decode_varint(payload, 0)
        count, pos = decode_varint(payload, pos)
        batch = cls()
        for _ in range(count):
            kind = payload[pos]
            pos += 1
            key, pos = decode_length_prefixed(payload, pos)
            value, pos = decode_length_prefixed(payload, pos)
            batch.ops.append((kind, key, value))
        return batch, start_seq


class Snapshot:
    """A consistent read point (all writes with ``seq <= self.seq``)."""

    def __init__(self, db: "DB", seq: int) -> None:
        self._db = db
        self.seq = seq
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._db._release_snapshot(self)
            self._released = True

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class DB:
    """A LevelDB-style LSM key-value store over a metered VFS."""

    def __init__(self, vfs: VFS, name: str, options: Options) -> None:
        """Use :meth:`open` / :meth:`open_memory` instead of direct construction."""
        self.vfs = vfs
        self.name = name
        self.options = options
        self.versions = VersionSet(options)
        self.table_cache = TableCache(vfs, name, options)
        self.memtable = MemTable()
        self._manifest: ManifestWriter | None = None
        self._log: LogWriter | None = None
        self._log_number = 0
        self._closed = False
        self._snapshots: list[Snapshot] = []
        self._flush_listeners: list[FlushListener] = []
        self.compactor = Compactor(
            vfs, name, options, self.versions, self.table_cache,
            self._log_and_apply, self._oldest_snapshot_seq)
        self._recover()

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def open(cls, vfs: VFS, name: str = "db",
             options: Options | None = None) -> "DB":
        """Open (creating if necessary) the database ``name`` on ``vfs``."""
        return cls(vfs, name, options or Options())

    @classmethod
    def open_memory(cls, options: Options | None = None,
                    name: str = "db") -> "DB":
        """Open a fresh database on a private in-memory VFS."""
        return cls(MemoryVFS(), name, options or Options())

    def _recover(self) -> None:
        existed = recover_version_set(self.vfs, self.name, self.versions)
        if existed:
            self._replay_logs()
            if not self.memtable.is_empty():
                # Persist replayed writes as a level-0 table *before* the
                # fresh manifest below advances the log number and the old
                # WALs are deleted.  Without this, recovered writes lived
                # only in the MemTable while their WAL was already gone —
                # a second crash (or even a clean close without a flush)
                # lost them permanently.  LevelDB likewise writes level-0
                # tables from recovered logs during open.
                self.compactor.flush_memtable(self.memtable)
                self.memtable = MemTable()
        new_manifest_number = self.versions.new_file_number()
        self._manifest = ManifestWriter(self.vfs, self.name,
                                        new_manifest_number)
        self._log_number = self.versions.new_file_number()
        edit = VersionEdit(
            log_number=self._log_number,
            next_file_number=self.versions.next_file_number,
            last_sequence=self.versions.last_sequence)
        # Re-log the full current state into the fresh manifest so it is
        # self-contained (LevelDB writes a similar "snapshot" record).
        for level, meta in self.versions.current.all_files():
            edit.add_file(level, meta)
        for level, pointer in enumerate(self.versions.compact_pointers):
            if pointer is not None:
                edit.compact_pointers.append((level, pointer))
        self.versions.log_number = self._log_number
        self._manifest.log_edit(edit)
        self._manifest.install_as_current()
        self._log = LogWriter(
            self.vfs.create(log_file_name(self.name, self._log_number)),
            sync=self.options.sync_writes)
        self._delete_obsolete_files()

    def _replay_logs(self) -> None:
        log_names = [name for name in self.vfs.list_dir(self.name + "/")
                     if name.endswith(".log")]
        for name in sorted(log_names):
            number = _parse_file_number(name.rsplit("/", 1)[-1])
            if number is None:
                logger.warning("ignoring unrecognized log file %r", name)
                continue
            if number < self.versions.log_number:
                continue
            reader = LogReader(self.vfs.open_random(name))
            for payload in reader:
                batch, start_seq = WriteBatch.decode(payload)
                for offset, (kind, key, value) in enumerate(batch.ops):
                    self.memtable.add(start_seq + offset, kind, key, value)
                self.versions.last_sequence = max(
                    self.versions.last_sequence,
                    start_seq + len(batch.ops) - 1)

    def _delete_obsolete_files(self) -> None:
        live = self.versions.live_file_numbers()
        tmp = current_tmp_file_name(self.name)
        for name in self.vfs.list_dir(self.name + "/"):
            base = name.rsplit("/", 1)[-1]
            if name == tmp:
                # A crash between writing CURRENT.tmp and renaming it over
                # CURRENT strands the scratch file; it is never meaningful
                # after open.
                self.vfs.delete_if_exists(name)
            elif base.endswith(".ldb"):
                number = _parse_file_number(base)
                if number is None:
                    logger.warning("ignoring unrecognized table file %r",
                                   name)
                elif number not in live:
                    self.table_cache.evict(number)
                    self.vfs.delete_if_exists(name)
            elif base.endswith(".log"):
                number = _parse_file_number(base)
                if number is None:
                    logger.warning("ignoring unrecognized log file %r", name)
                elif number < self._log_number:
                    self.vfs.delete_if_exists(name)
            elif base.startswith("MANIFEST-"):
                assert self._manifest is not None
                suffix = base.split("-", 1)[1]
                if not suffix.isdigit():
                    logger.warning("ignoring unrecognized manifest file %r",
                                   name)
                elif int(suffix) != self._manifest.number:
                    self.vfs.delete_if_exists(name)

    def close(self) -> None:
        if self._closed:
            return
        if self._log is not None:
            # A clean shutdown must not lose acknowledged writes even with
            # sync_writes off: push the WAL tail to stable storage first.
            self._log.sync()
            self._log.close()
        if self._manifest is not None:
            self._manifest.close()
        self.table_cache.close()
        self._closed = True

    def __enter__(self) -> "DB":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise DBClosedError("database is closed")

    # -- writes -----------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key`` (Table 1's PUT)."""
        self.write(WriteBatch().put(key, value))

    def delete(self, key: bytes) -> None:
        """Remove ``key`` if present (Table 1's DEL): writes a tombstone."""
        self.write(WriteBatch().delete(key))

    def merge(self, key: bytes, operand: bytes) -> None:
        """Append a merge operand; requires ``options.merge_operator``."""
        if self.options.merge_operator is None:
            raise InvalidArgumentError(
                "DB.merge requires options.merge_operator")
        self.write(WriteBatch().merge(key, operand))

    def write(self, batch: WriteBatch) -> int:
        """Apply ``batch`` atomically; returns the last assigned sequence.

        Raises :class:`~repro.lsm.errors.WriteStallError` when level 0 has
        reached ``l0_stop_writes_trigger`` files — only reachable with
        ``disable_auto_compaction``, since inline compaction otherwise
        drains level 0 as it fills.
        """
        self._check_open()
        if not batch.ops:
            return self.versions.last_sequence
        if self.versions.current.num_files(0) >= \
                self.options.l0_stop_writes_trigger:
            from repro.lsm.errors import WriteStallError

            raise WriteStallError(
                f"level 0 holds {self.versions.current.num_files(0)} files "
                f"(stop trigger {self.options.l0_stop_writes_trigger}); "
                f"run compact_range() or enable auto compaction")
        if self.options.sequence_oracle is not None:
            start_seq = self.options.sequence_oracle(len(batch.ops))
            if start_seq <= self.versions.last_sequence:
                raise InvalidArgumentError(
                    f"sequence oracle went backwards: {start_seq} <= "
                    f"{self.versions.last_sequence}")
        else:
            start_seq = self.versions.last_sequence + 1
        assert self._log is not None
        self._log.add_record(batch.encode(start_seq))
        for offset, (kind, key, value) in enumerate(batch.ops):
            self.memtable.add(start_seq + offset, kind, key, value)
        self.versions.last_sequence = start_seq + len(batch.ops) - 1
        self._maybe_flush()
        return self.versions.last_sequence

    def _maybe_flush(self) -> None:
        if self.memtable.approximate_memory_usage \
                < self.options.memtable_budget:
            return
        self.flush()

    def flush(self) -> None:
        """Flush the MemTable to a level-0 SSTable and run due compactions."""
        self._check_open()
        if self.memtable.is_empty():
            return
        flushed_max_seq = self.memtable.max_seq or 0
        old_log_number = self._log_number
        assert self._log is not None
        self._log.close()
        self._log_number = self.versions.new_file_number()
        self._log = LogWriter(
            self.vfs.create(log_file_name(self.name, self._log_number)),
            sync=self.options.sync_writes)
        # One edit makes the table live AND retires the old WAL.  Two
        # separate edits would open a crash window where the table is live
        # but the manifest still points at the old log: recovery would
        # replay writes already in the table, folding merge operands twice.
        self.compactor.flush_memtable(self.memtable,
                                      log_number=self._log_number)
        self.memtable = MemTable()
        # A crash-interrupted earlier flush (or recovery's own cleanup) may
        # have removed the previous WAL already.
        self.vfs.delete_if_exists(log_file_name(self.name, old_log_number))
        for listener in self._flush_listeners:
            listener(flushed_max_seq)
        if not self.options.disable_auto_compaction:
            self.compactor.maybe_compact()

    def _log_and_apply(self, edit: VersionEdit) -> None:
        edit.next_file_number = self.versions.next_file_number
        edit.last_sequence = self.versions.last_sequence
        if self._manifest is None:
            # Recovery-time flush: the manifest does not exist yet.  The
            # self-contained snapshot edit written right after captures the
            # applied state, so nothing is lost by skipping the log.
            self.versions.apply(edit)
            return
        self._manifest.log_edit(edit)
        self.versions.apply(edit)
        if self._manifest.size > self.options.max_manifest_size:
            self._roll_manifest()

    def _roll_manifest(self) -> None:
        """Replace the grown manifest with one snapshot-edit manifest.

        The manifest gains an edit per flush/compaction forever; rolling
        rewrites it as a single self-contained snapshot of the current
        version (LevelDB does the same on reopen and past a size limit).
        """
        from repro.lsm.manifest import manifest_file_name

        old_manifest = self._manifest
        assert old_manifest is not None
        number = self.versions.new_file_number()
        snapshot = VersionEdit(
            log_number=self._log_number,
            next_file_number=self.versions.next_file_number,
            last_sequence=self.versions.last_sequence)
        for level, meta in self.versions.current.all_files():
            snapshot.add_file(level, meta)
        for level, pointer in enumerate(self.versions.compact_pointers):
            if pointer is not None:
                snapshot.compact_pointers.append((level, pointer))
        new_manifest = ManifestWriter(self.vfs, self.name, number)
        new_manifest.log_edit(snapshot)
        new_manifest.install_as_current()
        old_manifest.close()
        self.vfs.delete_if_exists(
            manifest_file_name(self.name, old_manifest.number))
        self._manifest = new_manifest

    def add_flush_listener(self, listener: FlushListener) -> None:
        """Register a callback invoked with the max flushed seq after a flush."""
        self._flush_listeners.append(listener)

    # -- point reads ---------------------------------------------------------

    def get(self, key: bytes, snapshot: Snapshot | None = None) -> bytes | None:
        """Newest visible value of ``key``, or ``None`` (Table 1's GET)."""
        result = self.get_with_seq(key, snapshot)
        if result is None:
            return None
        return result[0]

    def get_with_seq(self, key: bytes, snapshot: Snapshot | None = None
                     ) -> tuple[bytes, int] | None:
        """Like :meth:`get` but also reports the resolving sequence number.

        For a merge chain the sequence of the newest operand is reported:
        it is the "time" the value last changed.
        """
        self._check_open()
        max_seq = snapshot.seq if snapshot is not None else MAX_SEQUENCE
        operands: list[bytes] = []
        newest_seq: int | None = None
        for kind, seq, value in self._versions_of(key, max_seq):
            if newest_seq is None:
                newest_seq = seq
            if kind == KIND_MERGE:
                operands.append(value)
                continue
            if kind == KIND_VALUE:
                if operands:
                    return self._fold(key, operands, value), newest_seq
                return value, seq
            # Tombstone: stop — older versions are dead.
            if operands:
                return self._fold(key, operands, None), newest_seq
            return None
        if operands:
            assert newest_seq is not None
            return self._fold(key, operands, None), newest_seq
        return None

    def _fold(self, key: bytes, operands_newest_first: list[bytes],
              base: bytes | None) -> bytes:
        operator = self.options.merge_operator
        if operator is None:
            raise InvalidArgumentError(
                "merge entries present but no merge_operator configured")
        oldest_first = list(reversed(operands_newest_first))
        if base is not None:
            oldest_first.insert(0, base)
        return operator(key, oldest_first)

    def _versions_of(self, key: bytes,
                     max_seq: int) -> Iterator[tuple[int, int, bytes]]:
        """All stored versions of ``key``, newest first, across components."""
        for entry in self.memtable.versions(key, max_seq):
            yield entry.kind, entry.seq, entry.value
        version = self.versions.current
        table_cache_get = self.table_cache.get
        # Level 0 files may each hold versions; interleave them by seq.
        l0_entries: list[tuple[int, int, bytes]] = []
        for meta in version.files_containing_key(0, key):
            table = table_cache_get(meta.file_number)
            l0_entries.extend(table.versions_raw(key, max_seq))
        if l0_entries:
            l0_entries.sort(key=lambda item: -item[1])
            yield from l0_entries
        for level in range(1, self.options.max_levels):
            for meta in version.files_containing_key(level, key):
                table = table_cache_get(meta.file_number)
                yield from table.versions_raw(key, max_seq)

    # -- LevelDB++ probes -------------------------------------------------------

    def fragments_by_level(self, key: bytes, max_seq: int = MAX_SEQUENCE
                           ) -> list[tuple[int, list[tuple[int, int, bytes]]]]:
        """Per-level version lists for ``key``: ``[(level, [(kind, seq, value)])]``.

        Level ``-1`` is the MemTable.  Within a level, entries come newest
        first.  This is the access path of the Lazy index's LOOKUP
        (Algorithm 3): "it checks the MemTable and then the SSTables, and
        moves down in the storage hierarchy one level at a time".
        """
        self._check_open()
        out: list[tuple[int, list[tuple[int, int, bytes]]]] = []
        mem = [(e.kind, e.seq, e.value)
               for e in self.memtable.versions(key, max_seq)]
        if mem:
            out.append((-1, mem))
        version = self.versions.current
        for level in range(self.options.max_levels):
            found: list[tuple[int, int, bytes]] = []
            for meta in version.files_containing_key(level, key):
                table = self.table_cache.get(meta.file_number)
                found.extend(table.versions_raw(key, max_seq,
                                                Category.INDEX))
            if found:
                found.sort(key=lambda item: -item[1])
                out.append((level, found))
        return out

    def key_maybe_in_levels(self, key: bytes, below_level: int,
                            include_memtable: bool = True) -> bool:
        """In-memory-only probe: could ``key`` exist in levels < ``below_level``?

        Uses the MemTable (exact) and, per candidate SSTable, the in-memory
        index block and primary bloom filters — zero I/O.  This implements
        the paper's ``GetLite`` check: "If the key appears in the upper
        levels (0 to currentlevel-1) ... there is an updated version".
        May return false positives at the bloom rate; never false negatives.
        """
        self._check_open()
        if include_memtable and self.memtable.get(key) is not None:
            return True
        version = self.versions.current
        for level in range(min(below_level, self.options.max_levels)):
            for meta in version.files_containing_key(level, key):
                table = self.table_cache.get(meta.file_number)
                if table.may_contain_user_key(key):
                    return True
        return False

    # -- range reads ------------------------------------------------------------

    def scan(self, lo: bytes | None = None, hi: bytes | None = None,
             snapshot: Snapshot | None = None,
             category: Category = Category.DATA
             ) -> Iterator[tuple[bytes, bytes]]:
        """User-visible ordered iteration over ``lo <= key <= hi``."""
        return map(itemgetter(0, 1),
                   self.scan_with_seq(lo, hi, snapshot, category))

    def scan_with_seq(self, lo: bytes | None = None, hi: bytes | None = None,
                      snapshot: Snapshot | None = None,
                      category: Category = Category.DATA
                      ) -> Iterator[tuple[bytes, bytes, int]]:
        """Like :meth:`scan` but yields ``(key, value, seq)``.

        This is a fused fast path over the reference pipeline
        ``clip_to_range(resolve_versions(merge_streams(...)))`` (which the
        equivalence tests pin it against): one loop does the k-way heap
        merge and the version resolution directly on ``(sort_key, value)``
        pairs, so no :class:`InternalKey` is allocated per entry and no
        per-entry generator hand-off happens between pipeline stages.
        """
        self._check_open()
        max_seq = snapshot.seq if snapshot is not None else MAX_SEQUENCE
        start_key = None if lo is None else \
            pack_internal_key(lo, MAX_SEQUENCE, KIND_FOR_SEEK)
        streams = [self._memtable_sorted(lo)]
        version = self.versions.current
        table_cache_get = self.table_cache.get
        # Level-0 files overlap: one heap stream each.  Deeper levels are
        # disjoint and sorted, so a whole level concatenates into a single
        # stream (LevelDB's concatenating iterator) — the heap holds one
        # entry per *level*, not per file, keeping each sift logarithmic in
        # the number of components rather than the number of files.
        for meta in version.overlapping_files(0, lo, hi):
            streams.append(table_cache_get(meta.file_number)
                           .sorted_entries(start_key, category))
        for level in range(1, self.options.max_levels):
            files = version.overlapping_files(level, lo, hi)
            if len(files) == 1:
                streams.append(table_cache_get(files[0].file_number)
                               .sorted_entries(start_key, category))
            elif files:
                streams.append(
                    self._sorted_level_stream(files, start_key, category))

        # Seed the heap: (sort_key, stream_index, value, advance).  The
        # stream index breaks sort-key ties, so the newest component wins
        # (streams are listed memtable first, then levels top-down).
        heap: list[tuple[tuple[bytes, int], int, bytes, Any]] = []
        for index, stream in enumerate(streams):
            advance = stream.__next__
            try:
                sort_key, value = advance()
            except StopIteration:
                continue
            heap.append((sort_key, index, value, advance))
        heapq.heapify(heap)
        heappop, heapreplace = heapq.heappop, heapq.heapreplace

        current_key: bytes | None = None
        operands: list[bytes] = []  # newest-first merge operands
        operand_seq = 0
        done_with_key = False
        while heap:
            sort_key, index, value, advance = heap[0]
            try:
                nxt = advance()
            except StopIteration:
                heappop(heap)
            else:
                heapreplace(heap, (nxt[0], index, nxt[1], advance))
            user_key = sort_key[0]
            if user_key != current_key:
                if operands:
                    yield (current_key,
                           self._fold(current_key, operands, None),
                           operand_seq)
                    operands = []
                if hi is not None and user_key > hi:
                    return
                current_key = user_key
                done_with_key = False
            if done_with_key or (lo is not None and user_key < lo):
                continue
            tag = -sort_key[1]
            seq = tag >> 8
            if seq > max_seq:
                continue
            kind = tag & 0xFF
            if kind == KIND_MERGE:
                if not operands:
                    operand_seq = seq
                operands.append(value)
                continue
            done_with_key = True
            if operands:
                base = value if kind == KIND_VALUE else None
                yield (current_key, self._fold(current_key, operands, base),
                       operand_seq)
                operands = []
            elif kind == KIND_VALUE:
                yield current_key, value, seq
            # KIND_DELETE with no pending operands: key is simply hidden.
        if operands:
            yield (current_key, self._fold(current_key, operands, None),
                   operand_seq)

    def _sorted_level_stream(self, files, start_key: bytes | None,
                             category: Category
                             ) -> Iterator[tuple[tuple[bytes, int], bytes]]:
        """Concatenated ``(sort_key, value)`` stream over one disjoint level."""
        table_cache_get = self.table_cache.get
        for meta in files:
            yield from table_cache_get(meta.file_number) \
                .sorted_entries(start_key, category)

    def _memtable_sorted(self, lo: bytes | None
                         ) -> Iterator[tuple[tuple[bytes, int], bytes]]:
        """MemTable entries as ``(sort_key, value)`` pairs for the scan path."""
        if lo is None:
            for entry in self.memtable:
                yield ((entry.user_key, -((entry.seq << 8) | entry.kind)),
                       entry.value)
            return
        for _key, entry in self.memtable._list.items_from((lo, 0)):
            yield ((entry.user_key, -((entry.seq << 8) | entry.kind)),
                   entry.value)

    def _memtable_stream(self, lo: bytes | None
                         ) -> Iterator[tuple[InternalKey, bytes]]:
        if lo is None:
            for entry in self.memtable:
                yield InternalKey(entry.user_key, entry.seq, entry.kind), \
                    entry.value
            return
        start = (lo, 0)
        for (_user_key, _inv_seq), entry in self.memtable._list.items_from(start):
            yield InternalKey(entry.user_key, entry.seq, entry.kind), \
                entry.value

    @staticmethod
    def _table_stream_from(table, lo: bytes | None, category: Category
                           ) -> Iterator[tuple[InternalKey, bytes]]:
        if lo is None:
            yield from table
        else:
            start = pack_internal_key(lo, MAX_SEQUENCE, KIND_FOR_SEEK)
            yield from table.iterate_from(start, category)

    def scan_level(self, level: int, lo: bytes | None = None,
                   hi: bytes | None = None,
                   category: Category = Category.INDEX
                   ) -> Iterator[tuple[InternalKey, bytes]]:
        """Raw versions stored in one level, in internal-key order.

        ``level == -1`` scans the MemTable.  No version resolution and no
        tombstone hiding happens here: the Lazy and Composite indexes
        interpret per-level entries themselves (Algorithms 3-4, 6-7).
        Entries outside ``[lo, hi]`` (user keys) are excluded.
        """
        self._check_open()
        if level == -1:
            stream: Iterator[tuple[InternalKey, bytes]] = \
                self._memtable_stream(lo)
        else:
            version = self.versions.current
            files = version.overlapping_files(level, lo, hi)
            if level == 0:
                stream = merge_streams([
                    self._table_stream_from(
                        self.table_cache.get(meta.file_number), lo, category)
                    for meta in files])
            else:
                stream = self._concat_tables(files, lo, category)
        for ikey, value in stream:
            if lo is not None and ikey.user_key < lo:
                continue
            if hi is not None and ikey.user_key > hi:
                return
            yield ikey, value

    def _concat_tables(self, files, lo: bytes | None, category: Category
                       ) -> Iterator[tuple[InternalKey, bytes]]:
        for meta in files:
            table = self.table_cache.get(meta.file_number)
            yield from self._table_stream_from(table, lo, category)

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Pin the current sequence number for consistent reads."""
        self._check_open()
        snap = Snapshot(self, self.versions.last_sequence)
        self._snapshots.append(snap)
        return snap

    def _release_snapshot(self, snap: Snapshot) -> None:
        self._snapshots = [s for s in self._snapshots if s is not snap]

    def _oldest_snapshot_seq(self) -> int:
        if not self._snapshots:
            return MAX_SEQUENCE
        return min(snap.seq for snap in self._snapshots)

    # -- maintenance & introspection ---------------------------------------------

    def compact_range(self) -> None:
        """Flush, then push every level's data downward once (manual, full)."""
        self._check_open()
        self.flush()
        for level in range(self.options.max_levels - 1):
            files = list(self.versions.current.levels[level])
            if not files:
                continue
            lo = min(meta.smallest_user_key for meta in files)
            hi = max(meta.largest_user_key for meta in files)
            inputs1 = self.versions.current.overlapping_files(level + 1, lo, hi)
            self.compactor.run(Compaction(level, files, inputs1))

    def checkpoint(self, dest_vfs: VFS, dest_name: str) -> int:
        """Write a consistent, independently openable copy of the database.

        SSTables are immutable, so a checkpoint is: flush the MemTable,
        then copy every live table byte-for-byte and write a fresh
        self-contained manifest describing them (RocksDB's Checkpoint
        mechanism).  Later writes to this database never touch the copy.
        Returns the number of files copied.
        """
        self._check_open()
        self.flush()
        from repro.lsm.manifest import ManifestWriter, table_file_name

        copied = 0
        edit = VersionEdit(
            log_number=0,
            next_file_number=self.versions.next_file_number,
            last_sequence=self.versions.last_sequence)
        for level, meta in self.versions.current.all_files():
            payload = self.vfs.read_whole(
                table_file_name(self.name, meta.file_number),
                Category.OTHER)
            dest_vfs.write_whole(
                table_file_name(dest_name, meta.file_number), payload,
                Category.OTHER)
            edit.add_file(level, meta)
            copied += 1
        manifest = ManifestWriter(dest_vfs, dest_name, 1)
        manifest.log_edit(edit)
        manifest.install_as_current()
        manifest.close()
        return copied

    def verify_integrity(self):
        """Audit the database's persistent state; see :mod:`repro.lsm.checker`.

        Checks manifest-vs-filesystem agreement (including orphaned engine
        files left by an interrupted crash recovery), per-table physical and
        logical invariants, and cross-table level invariants.  Returns an
        :class:`~repro.lsm.checker.IntegrityReport`; ``report.ok`` means the
        database is sound.
        """
        self._check_open()
        from repro.lsm.checker import verify_integrity

        return verify_integrity(self)

    def approximate_size(self) -> int:
        """Total bytes of all files belonging to this database."""
        return self.vfs.total_size(self.name + "/")

    def num_nonempty_levels(self) -> int:
        """The paper's L: populated on-disk levels, plus the MemTable if any."""
        levels = self.versions.current.num_nonempty_levels()
        if not self.memtable.is_empty():
            levels += 1
        return levels

    @property
    def io_stats(self):
        return self.vfs.stats

    def stats(self) -> dict[str, Any]:
        """Operational counters, one JSON-friendly dict (RocksDB's
        ``GetProperty``, condensed): compaction work, table-cache and
        block-cache hit rates, I/O meters and the level shape."""
        self._check_open()
        compaction = self.compactor.stats
        io = self.vfs.stats
        block_cache = self.table_cache.block_cache
        return {
            "levels": self.level_file_counts(),
            "last_sequence": self.versions.last_sequence,
            "memtable_entries": len(self.memtable),
            "memtable_bytes": self.memtable.approximate_memory_usage,
            "compaction": {
                "flush_count": compaction.flush_count,
                "compaction_count": compaction.compaction_count,
                "bytes_flushed": compaction.bytes_flushed,
                "bytes_compacted_in": compaction.bytes_compacted_in,
                "bytes_compacted_out": compaction.bytes_compacted_out,
                "entries_dropped": compaction.entries_dropped,
                "merges_folded": compaction.merges_folded,
                "compactions_by_level": dict(compaction.compactions_by_level),
            },
            "table_cache": self.table_cache.stats(),
            "block_cache": None if block_cache is None else {
                "capacity_bytes": block_cache.capacity,
                "used_bytes": block_cache.used_bytes,
                "hits": block_cache.hits,
                "misses": block_cache.misses,
            },
            "io": {
                "read_ops": io.read_ops,
                "write_ops": io.write_ops,
                "read_blocks": io.read_blocks,
                "write_blocks": io.write_blocks,
                "read_bytes": io.read_bytes,
                "write_bytes": io.write_bytes,
            },
        }

    def level_file_counts(self) -> list[int]:
        return [len(files) for files in self.versions.current.levels]

    def debug_string(self) -> str:
        """Human-readable internal state (RocksDB's ``GetProperty`` spirit).

        Level shapes, MemTable pressure, compaction counters and the I/O
        meters — everything needed to understand what the tree is doing.
        """
        version = self.versions.current
        stats = self.compactor.stats
        io = self.vfs.stats
        lines = [
            f"-- DB {self.name} --",
            f"last_sequence: {self.versions.last_sequence}",
            f"memtable: {len(self.memtable)} entries / "
            f"{self.memtable.approximate_memory_usage:,} of "
            f"{self.options.memtable_budget:,} bytes",
        ]
        for level, files in enumerate(version.levels):
            if not files:
                continue
            budget = self.options.max_bytes_for_level(level)
            budget_text = "n/a" if budget == float("inf") \
                else f"{budget:,.0f}"
            lines.append(
                f"L{level}: {len(files):3d} files "
                f"{version.level_size(level):>10,} bytes "
                f"(budget {budget_text})")
        lines.append(
            f"flushes: {stats.flush_count}  "
            f"compactions: {stats.compaction_count} "
            f"{dict(sorted(stats.compactions_by_level.items()))}")
        lines.append(
            f"compacted: {stats.bytes_compacted_in:,} in / "
            f"{stats.bytes_compacted_out:,} out  "
            f"dropped entries: {stats.entries_dropped}  "
            f"merges folded: {stats.merges_folded}")
        lines.append(
            f"io: {io.read_blocks:,} read blocks / "
            f"{io.write_blocks:,} write blocks "
            f"(reads by category: {dict(sorted(io.reads_by_category.items()))})")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        files = sum(self.level_file_counts())
        return (f"DB(name={self.name!r}, files={files}, "
                f"last_seq={self.versions.last_sequence})")
