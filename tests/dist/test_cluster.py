"""The sharded store: routing, local vs global indexes, exact top-K."""

import random

import pytest

from repro.core.base import IndexKind
from repro.dist.cluster import SequenceOracle, ShardedDB
from repro.dist.partitioner import (HashPartitioner, RangePartitioner,
                                    SplitHashRing)
from repro.lsm.errors import DBClosedError, InvalidArgumentError
from repro.lsm.options import Options


def _options():
    return Options(block_size=1024, sstable_target_size=4 * 1024,
                   memtable_budget=4 * 1024, l1_target_size=16 * 1024)


def _local_cluster(num_shards=4, kind=IndexKind.LAZY):
    return ShardedDB.open_memory(
        num_shards=num_shards, local_indexes={"UserID": kind},
        options=_options())


def _global_cluster(num_shards=4):
    return ShardedDB.open_memory(
        num_shards=num_shards, global_indexes=("UserID",),
        options=_options())


def _apply_random_ops(cluster, seed, num_ops, num_keys=300, num_users=15):
    rng = random.Random(seed)
    oracle = {}
    for i in range(num_ops):
        key = f"t{rng.randrange(num_keys):05d}"
        if rng.random() < 0.08:
            cluster.delete(key)
            oracle.pop(key, None)
        else:
            doc = {"UserID": f"u{rng.randrange(num_users):03d}",
                   "Body": "x" * rng.randrange(30)}
            seq = cluster.put(key, doc)
            oracle[key] = (doc, seq)
    return oracle


def _oracle_lookup(oracle, value):
    return sorted(((seq, key) for key, (doc, seq) in oracle.items()
                   if doc["UserID"] == value), reverse=True)


class TestPartitioner:
    def test_stable_and_in_range(self):
        partitioner = HashPartitioner(5)
        for i in range(200):
            shard = partitioner.shard_of(f"key{i}".encode())
            assert 0 <= shard < 5
            assert shard == partitioner.shard_of(f"key{i}".encode())

    def test_roughly_balanced(self):
        partitioner = HashPartitioner(4)
        counts = [0] * 4
        for i in range(4000):
            counts[partitioner.shard_of(f"key{i}".encode())] += 1
        assert min(counts) > 700  # within ~30% of perfect balance

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)
        with pytest.raises(ValueError):
            SplitHashRing(0)
        with pytest.raises(ValueError):
            HashPartitioner(-1)

    def test_single_shard_routes_everything_to_zero(self):
        for partitioner in (HashPartitioner(1), SplitHashRing(1),
                            RangePartitioner([])):
            for i in range(50):
                assert partitioner.shard_of(f"key{i}".encode()) == 0
            assert partitioner.shards_overlapping(b"a", b"z") == [0]

    def test_hash_ranges_scatter_to_every_shard(self):
        partitioner = HashPartitioner(4)
        assert partitioner.shards_overlapping(b"a", b"b") == [0, 1, 2, 3]


class TestRangePartitioner:
    def test_boundary_keys(self):
        partitioner = RangePartitioner([b"g", b"p"])
        assert partitioner.num_shards == 3
        assert partitioner.shard_of(b"") == 0          # below everything
        assert partitioner.shard_of(b"a") == 0
        assert partitioner.shard_of(b"fzzz") == 0      # just under a split
        assert partitioner.shard_of(b"g") == 1         # at a split: right
        assert partitioner.shard_of(b"g\x00") == 1
        assert partitioner.shard_of(b"p") == 2         # at the last split
        assert partitioner.shard_of(b"zzz") == 2       # above everything

    def test_overlap_is_interval_precise(self):
        partitioner = RangePartitioner([b"g", b"p"])
        assert partitioner.shards_overlapping(b"a", b"c") == [0]
        assert partitioner.shards_overlapping(b"a", b"g") == [0, 1]
        assert partitioner.shards_overlapping(b"h", b"z") == [1, 2]
        assert partitioner.shards_overlapping(b"a", b"z") == [0, 1, 2]
        assert partitioner.shards_overlapping(b"z", b"a") == []  # empty

    def test_invalid_split_points(self):
        with pytest.raises(ValueError):
            RangePartitioner([b"p", b"g"])      # unsorted
        with pytest.raises(ValueError):
            RangePartitioner([b"g", b"g"])      # duplicate


class TestSplitHashRing:
    def test_unsplit_ring_matches_hash_partitioner(self):
        for num_shards in (1, 2, 4, 7):
            ring = SplitHashRing(num_shards)
            flat = HashPartitioner(num_shards)
            for i in range(500):
                key = f"key{i}".encode()
                assert ring.shard_of(key) == flat.shard_of(key)

    def test_split_only_remaps_the_parents_keys(self):
        ring = SplitHashRing(4)
        split = ring.with_split(2, 4)
        moved = 0
        for i in range(2000):
            key = f"key{i}".encode()
            before, after = ring.shard_of(key), split.shard_of(key)
            if before != 2:
                assert after == before  # other shards never remapped
            else:
                assert after in (2, 4)
                moved += after == 4
        assert moved > 100  # roughly half of shard 2's keys actually move

    def test_repeated_splits_quarter_the_keyspace(self):
        ring = SplitHashRing(2).with_split(0, 2).with_split(0, 3)
        assert ring.num_shards == 4
        counts = [0] * 4
        for i in range(4000):
            counts[ring.shard_of(f"key{i}".encode())] += 1
        # Shard 1 kept its half; shards 0, 2 and 3 split the other half.
        assert counts[1] > 1400
        assert all(count > 300 for count in (counts[0], counts[2],
                                             counts[3]))

    def test_split_validation(self):
        ring = SplitHashRing(2)
        with pytest.raises(ValueError):
            ring.with_split(5, 2)        # parent is not a shard
        with pytest.raises(ValueError):
            ring.with_split(0, 1)        # target already exists
        with pytest.raises(ValueError):
            ring.with_split(0, 2).with_split(1, 2)  # duplicate target

    def test_split_is_immutable_and_overlap_scatters(self):
        ring = SplitHashRing(2)
        split = ring.with_split(0, 2)
        assert ring.num_shards == 2      # original ring untouched
        assert split.num_shards == 3
        assert split.shards_overlapping(b"a", b"z") == [0, 1, 2]


class TestSequenceOracle:
    def test_monotone_allocation(self):
        oracle = SequenceOracle()
        first = oracle.allocate(3)
        second = oracle.allocate(1)
        assert first == 1
        assert second == 4
        assert oracle.last_allocated == 4


class TestRouting:
    def test_put_get_delete_roundtrip(self):
        cluster = _local_cluster()
        cluster.put("k1", {"UserID": "u1"})
        assert cluster.get("k1") == {"UserID": "u1"}
        cluster.delete("k1")
        assert cluster.get("k1") is None
        cluster.close()

    def test_records_spread_across_shards(self):
        cluster = _local_cluster()
        for i in range(400):
            cluster.put(f"k{i:04d}", {"UserID": "u1"})
        counts = cluster.shard_record_counts()
        assert sum(counts) == 400
        assert all(count > 40 for count in counts)
        cluster.close()

    def test_unindexed_attribute_rejected(self):
        cluster = _local_cluster()
        with pytest.raises(InvalidArgumentError):
            cluster.lookup("Body", "x")
        cluster.close()

    def test_overlapping_scopes_rejected(self):
        with pytest.raises(InvalidArgumentError):
            ShardedDB.open_memory(local_indexes={"UserID": IndexKind.LAZY},
                                  global_indexes=("UserID",),
                                  options=_options())

    def test_closed_cluster(self):
        cluster = _local_cluster()
        cluster.close()
        with pytest.raises(DBClosedError):
            cluster.get("k")
        cluster.close()  # idempotent


@pytest.mark.parametrize("scope", ["local", "global"])
class TestEquivalence:
    def _cluster(self, scope):
        if scope == "local":
            return _local_cluster()
        return _global_cluster()

    def test_lookup_matches_oracle(self, scope):
        cluster = self._cluster(scope)
        oracle = _apply_random_ops(cluster, seed=301, num_ops=1500)
        for user_index in range(15):
            value = f"u{user_index:03d}"
            got = [(r.seq, r.key) for r in cluster.lookup(
                "UserID", value, early_termination=False)]
            assert got == _oracle_lookup(oracle, value), (scope, value)
        cluster.close()

    def test_top_k_exact_across_shards(self, scope):
        cluster = self._cluster(scope)
        oracle = _apply_random_ops(cluster, seed=302, num_ops=1200)
        for user_index in range(0, 15, 3):
            value = f"u{user_index:03d}"
            got = [(r.seq, r.key) for r in cluster.lookup(
                "UserID", value, k=5, early_termination=False)]
            assert got == _oracle_lookup(oracle, value)[:5], (scope, value)
        cluster.close()

    def test_range_lookup_matches_oracle(self, scope):
        cluster = self._cluster(scope)
        oracle = _apply_random_ops(cluster, seed=303, num_ops=1200)
        got = [(r.seq, r.key) for r in cluster.range_lookup(
            "UserID", "u003", "u007", early_termination=False)]
        want = sorted(((seq, key) for key, (doc, seq) in oracle.items()
                       if "u003" <= doc["UserID"] <= "u007"), reverse=True)
        assert got == want
        cluster.close()

    def test_updates_move_records(self, scope):
        cluster = self._cluster(scope)
        cluster.put("k1", {"UserID": "u001"})
        cluster.put("k1", {"UserID": "u002"})
        assert cluster.lookup("UserID", "u001",
                              early_termination=False) == []
        assert [r.key for r in cluster.lookup(
            "UserID", "u002", early_termination=False)] == ["k1"]
        cluster.close()


class TestFanOut:
    def test_local_lookup_contacts_every_shard(self):
        cluster = _local_cluster(num_shards=6)
        _apply_random_ops(cluster, seed=304, num_ops=300)
        cluster.data_shards_contacted = 0
        cluster.lookup("UserID", "u001", k=5)
        assert cluster.data_shards_contacted == 6
        cluster.close()

    def test_global_lookup_contacts_one_index_shard(self):
        cluster = _global_cluster(num_shards=6)
        _apply_random_ops(cluster, seed=305, num_ops=300)
        gsi = cluster.global_indexes["UserID"]
        gsi.shards_contacted = 0
        cluster.data_shards_contacted = 0
        results = cluster.lookup("UserID", "u001", k=5)
        assert gsi.shards_contacted == 1
        # Data-shard GETs only for validation of the returned candidates.
        assert cluster.data_shards_contacted <= max(5, len(results) + 3)
        cluster.close()

    def test_global_range_scatters_index_ring(self):
        cluster = _global_cluster(num_shards=4)
        _apply_random_ops(cluster, seed=306, num_ops=300)
        gsi = cluster.global_indexes["UserID"]
        gsi.shards_contacted = 0
        cluster.range_lookup("UserID", "u000", "u005", k=5)
        assert gsi.shards_contacted == len(gsi.shards)
        cluster.close()


class TestGlobalIndexMaintenance:
    def test_deletes_clean_global_index(self):
        cluster = _global_cluster()
        cluster.put("k1", {"UserID": "u001"})
        cluster.put("k2", {"UserID": "u001"})
        cluster.delete("k1")
        assert [r.key for r in cluster.lookup(
            "UserID", "u001", early_termination=False)] == ["k2"]
        cluster.close()

    def test_total_size_includes_gsi(self):
        cluster = _global_cluster()
        _apply_random_ops(cluster, seed=307, num_ops=500)
        for shard in cluster.data_shards:
            shard.flush()
        for index in cluster.global_indexes.values():
            for lazy in index.shards:
                lazy.flush()
        assert cluster.total_size() > 0
        assert cluster.global_indexes["UserID"].size_bytes() > 0
        cluster.close()


class TestWritePathSequenceAttribution:
    def test_delete_returns_the_tombstones_own_seq(self):
        """The GSI deletion marker must carry the tombstone's sequence.

        The old code read ``versions.last_sequence`` after the shard
        delete returned; a concurrent writer committing on the same shard
        in that window would stamp the marker with *its* sequence.  The
        racer below commits inside exactly that window.
        """
        cluster = _global_cluster(num_shards=1)
        cluster.put("k1", {"UserID": "u001"})
        shard = cluster.data_shards[0]
        gsi = cluster.global_indexes["UserID"]

        marker_seqs = []
        real_on_delete = gsi.on_delete
        gsi.on_delete = lambda key, old, seq: (
            marker_seqs.append(seq), real_on_delete(key, old, seq))

        racer_seqs = []
        real_delete = shard.delete

        def racing_delete(key_bytes, on_commit=None):
            seq = real_delete(key_bytes, on_commit=on_commit)
            # A concurrent writer lands on the same shard before the
            # router gets to look at anything else.
            racer_seqs.append(shard.put(b"racer", {"UserID": "u002"}))
            return seq

        shard.delete = racing_delete
        try:
            del_seq = cluster.delete("k1")
        finally:
            shard.delete = real_delete
            gsi.on_delete = real_on_delete

        assert racer_seqs and del_seq < racer_seqs[0]
        assert marker_seqs == [del_seq]
        assert cluster.lookup("UserID", "u001",
                              early_termination=False) == []
        cluster.close()

    def test_put_and_delete_return_monotone_global_seqs(self):
        cluster = _global_cluster(num_shards=4)
        seqs = [cluster.put(f"m{i}", {"UserID": "u001"}) for i in range(20)]
        seqs.extend(cluster.delete(f"m{i}") for i in range(0, 20, 2))
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        cluster.close()


class TestGlobalIndexFaultContainment:
    def _arm_one_fault(self, gsi, method_name):
        """Make the next ``on_put``/``on_delete`` on the ring raise once."""
        real = getattr(gsi, method_name)
        armed = {"on": True}

        def flaky(key, doc, seq):
            if armed["on"]:
                armed["on"] = False
                raise RuntimeError("simulated index-shard outage")
            real(key, doc, seq)

        setattr(gsi, method_name, flaky)
        return armed

    def test_mid_put_fault_never_yields_wrong_lookups(self):
        cluster = _global_cluster()
        oracle = _apply_random_ops(cluster, seed=401, num_ops=200)
        gsi = cluster.global_indexes["UserID"]
        self._arm_one_fault(gsi, "on_put")

        with pytest.raises(RuntimeError, match="outage"):
            cluster.put("t99998", {"UserID": "u000"})
        # The record is durable — the data shard committed first — and
        # the stale ring is flagged rather than silently wrong.
        assert cluster.get("t99998") == {"UserID": "u000"}
        assert cluster.dirty_global_indexes() == ["UserID"]

        # Writes while dirty skip the ring (the rebuild replays them).
        t9_seq = cluster.put("t99999", {"UserID": "u001"})
        cluster.delete("t99998")
        assert cluster.dirty_global_indexes() == ["UserID"]
        oracle.pop("t99998", None)
        oracle["t99999"] = ({"UserID": "u001"}, t9_seq)

        # The first query heals the ring; results must match the oracle
        # exactly — never the pre-fault contents.
        for user in ("u000", "u001", "u007"):
            results = cluster.lookup("UserID", user,
                                     early_termination=False)
            expected = [key for _seq, key in _oracle_lookup(oracle, user)]
            assert [r.key for r in results] == expected, user
        assert cluster.dirty_global_indexes() == []
        cluster.close()

    def test_mid_delete_fault_is_contained_and_healed(self):
        cluster = _global_cluster(num_shards=2)
        for i in range(10):
            cluster.put(f"d{i}", {"UserID": "u001"})
        gsi = cluster.global_indexes["UserID"]
        self._arm_one_fault(gsi, "on_delete")

        with pytest.raises(RuntimeError, match="outage"):
            cluster.delete("d3")
        assert cluster.get("d3") is None  # tombstone committed
        assert cluster.dirty_global_indexes() == ["UserID"]

        healed = cluster.heal_indexes()
        assert healed["global:UserID"] == 9
        assert cluster.dirty_global_indexes() == []
        keys = {r.key for r in cluster.lookup("UserID", "u001",
                                              early_termination=False)}
        assert keys == {f"d{i}" for i in range(10) if i != 3}
        cluster.close()

    def test_explicit_rebuild_matches_scratch_ring(self):
        cluster = _global_cluster()
        oracle = _apply_random_ops(cluster, seed=402, num_ops=300)
        replayed = cluster.rebuild_global_index("UserID")
        assert replayed == len(oracle)
        for user in ("u000", "u004", "u011"):
            expected = [key for _seq, key in _oracle_lookup(oracle, user)]
            results = cluster.lookup("UserID", user, early_termination=False)
            assert [r.key for r in results] == expected
        cluster.close()

    def test_rebuild_unknown_attribute_rejected(self):
        cluster = _global_cluster()
        with pytest.raises(InvalidArgumentError):
            cluster.rebuild_global_index("Nope")
        cluster.close()
