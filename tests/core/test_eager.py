"""Stand-Alone Eager Index: read-modify-write posting lists."""

from conftest import load_tweets, open_db

from repro.core.base import IndexKind
from repro.core.posting import decode_posting_list
from repro.lsm.zonemap import encode_attribute


class TestListMaintenance:
    def test_list_prepends_newest(self, index_options):
        db = open_db(IndexKind.EAGER, index_options)
        db.put("t1", {"UserID": "u1"})
        db.put("t2", {"UserID": "u1"})
        db.put("t3", {"UserID": "u1"})
        index = db.indexes["UserID"]
        payload = index.index_db.get(encode_attribute("u1"))
        entries = decode_posting_list(payload)
        assert [e.key for e in entries] == ["t3", "t2", "t1"]
        db.close()

    def test_reput_moves_to_front_without_duplicates(self, index_options):
        db = open_db(IndexKind.EAGER, index_options)
        db.put("t1", {"UserID": "u1"})
        db.put("t2", {"UserID": "u1"})
        db.put("t1", {"UserID": "u1"})  # re-put same key, same value
        index = db.indexes["UserID"]
        entries = decode_posting_list(
            index.index_db.get(encode_attribute("u1")))
        assert [e.key for e in entries] == ["t1", "t2"]
        db.close()

    def test_update_leaves_stale_entry_in_old_list(self, index_options):
        """Example 3: PUT(t3, u1) when t3 was u2 — u2's list keeps the
        stale posting, filtered at query time by the validity check."""
        db = open_db(IndexKind.EAGER, index_options)
        db.put("t3", {"UserID": "u2"})
        db.put("t3", {"UserID": "u1"})
        index = db.indexes["UserID"]
        stale = decode_posting_list(
            index.index_db.get(encode_attribute("u2")))
        assert [e.key for e in stale] == ["t3"]
        assert [r.key for r in db.lookup("UserID", "u2")] == []
        assert [r.key for r in db.lookup("UserID", "u1")] == ["t3"]
        db.close()

    def test_delete_removes_from_list(self, index_options):
        db = open_db(IndexKind.EAGER, index_options)
        db.put("t1", {"UserID": "u1"})
        db.put("t2", {"UserID": "u1"})
        db.delete("t1")
        index = db.indexes["UserID"]
        entries = decode_posting_list(
            index.index_db.get(encode_attribute("u1")))
        assert [e.key for e in entries] == ["t2"]
        assert [r.key for r in db.lookup("UserID", "u1")] == ["t2"]
        db.close()

    def test_write_path_reads_counted(self, index_options):
        db = open_db(IndexKind.EAGER, index_options)
        load_tweets(db, 50)
        assert db.indexes["UserID"].write_path_reads == 50
        db.close()

    def test_document_without_attribute_not_indexed(self, index_options):
        db = open_db(IndexKind.EAGER, index_options)
        db.put("t1", {"Other": "x"})
        assert db.indexes["UserID"].index_db.get(
            encode_attribute("x")) is None
        db.close()


class TestQueries:
    def test_lookup_newest_first(self, index_options):
        db = open_db(IndexKind.EAGER, index_options)
        load_tweets(db, 30, users=3)
        results = db.lookup("UserID", "u1")
        assert [r.key for r in results] == [
            f"t{i:05d}" for i in range(29, -1, -1) if i % 3 == 1]
        db.close()

    def test_lookup_top_k_stops_early(self, index_options):
        db = open_db(IndexKind.EAGER, index_options)
        load_tweets(db, 30, users=3)
        checker_before = db.checker.validation_gets
        results = db.lookup("UserID", "u1", k=2)
        assert len(results) == 2
        # Only K prefix entries should be fetched from the data table.
        assert db.checker.validation_gets - checker_before == 2
        db.close()

    def test_lookup_unknown_value(self, index_options):
        db = open_db(IndexKind.EAGER, index_options)
        load_tweets(db, 10)
        assert db.lookup("UserID", "nobody") == []
        db.close()

    def test_range_lookup_merges_lists_newest_first(self, index_options):
        db = open_db(IndexKind.EAGER, index_options)
        load_tweets(db, 40, users=8)
        results = db.range_lookup("UserID", "u2", "u4")
        want = [f"t{i:05d}" for i in range(39, -1, -1) if i % 8 in (2, 3, 4)]
        assert [r.key for r in results] == want
        db.close()

    def test_range_lookup_top_k(self, index_options):
        db = open_db(IndexKind.EAGER, index_options)
        load_tweets(db, 40, users=8)
        results = db.range_lookup("UserID", "u2", "u4", k=3)
        want = [f"t{i:05d}" for i in range(39, -1, -1)
                if i % 8 in (2, 3, 4)][:3]
        assert [r.key for r in results] == want
        db.close()

    def test_empty_range(self, index_options):
        db = open_db(IndexKind.EAGER, index_options)
        load_tweets(db, 10)
        assert db.range_lookup("UserID", "z", "a") == []
        db.close()

    def test_survives_flush_and_compaction(self, index_options):
        db = open_db(IndexKind.EAGER, index_options)
        load_tweets(db, 300, users=5)
        db.compact_all()
        results = db.lookup("UserID", "u2", k=4)
        assert [r.key for r in results] == [
            f"t{i:05d}" for i in range(299, -1, -1) if i % 5 == 2][:4]
        db.close()
