"""Local vs global secondary indexes on a sharded cluster (Appendix D).

The paper's single-node study ends where distribution begins: Riak and
Cassandra ship *local* per-shard indexes, DynamoDB ships *global* indexes
partitioned by attribute value.  This example runs both designs over the
same sharded store and shows the fan-out difference per query.

Run with::

    python examples/distributed_cluster.py
"""

from repro.core.base import IndexKind
from repro.dist import ShardedDB
from repro.lsm.options import Options
from repro.workloads.tweets import SeedProfile, TweetGenerator


def _ingest(cluster, count=3000):
    generator = TweetGenerator(SeedProfile(num_users=150), seed=12)
    for key, doc in generator.tweets(count):
        cluster.put(key, doc)


def main() -> None:
    options = Options(block_size=2048, sstable_target_size=16 * 1024,
                      memtable_budget=16 * 1024, l1_target_size=64 * 1024)

    print("LOCAL secondary indexes (Riak/Cassandra style)")
    print("-" * 50)
    local = ShardedDB.open_memory(
        num_shards=6, local_indexes={"UserID": IndexKind.LAZY},
        options=options)
    _ingest(local)
    print(f"records per shard: {local.shard_record_counts()}")
    local.data_shards_contacted = 0
    timeline = local.lookup("UserID", "u00003", k=5)
    print(f"top-5 lookup returned {len(timeline)} tweets, "
          f"contacted {local.data_shards_contacted} data shards "
          f"(scatter-gather: every shard, every query)")
    local.close()

    print("\nGLOBAL secondary index (DynamoDB GSI style)")
    print("-" * 50)
    global_ = ShardedDB.open_memory(
        num_shards=6, global_indexes=("UserID",), options=options)
    _ingest(global_)
    gsi = global_.global_indexes["UserID"]
    gsi.shards_contacted = 0
    global_.data_shards_contacted = 0
    timeline = global_.lookup("UserID", "u00003", k=5)
    print(f"top-5 lookup returned {len(timeline)} tweets, "
          f"contacted {gsi.shards_contacted} index shard and "
          f"{global_.data_shards_contacted} data-shard GETs "
          f"(routed: one index partition + per-result validation)")
    print("\nthe trade-off: global indexes pay an extra cross-shard write "
          "per PUT;\nlocal indexes pay a full cluster scatter per query — "
          "read-heavy services\nwant global, write-heavy ingest wants "
          "local.")
    global_.close()


if __name__ == "__main__":
    main()
