"""Fault-injecting VFS: scheduled failures, crash imaging, enumeration."""

import pytest

from repro.lsm.errors import FaultInjectedError, NotFoundError, \
    SimulatedCrashError
from repro.lsm.faults import (
    FaultInjectingVFS,
    count_mutations,
    crash_points,
    run_until_crash,
)
from repro.lsm.vfs import DEVICE_BLOCK_SIZE, Category


def _write(vfs, name, data, sync=True):
    handle = vfs.create(name)
    handle.append(data, Category.OTHER)
    if sync:
        handle.sync()
    handle.close()


class TestOpCounting:
    def test_mutations_are_counted(self):
        vfs = FaultInjectingVFS()
        _write(vfs, "a", b"x")          # create + append + sync
        vfs.rename("a", "b")            # rename
        vfs.delete("b")                 # delete
        assert vfs.op_count == 5

    def test_reads_are_free(self):
        vfs = FaultInjectingVFS()
        _write(vfs, "a", b"hello")
        before = vfs.op_count
        vfs.read_whole("a")
        vfs.exists("a")
        vfs.list_dir()
        vfs.file_size("a")
        assert vfs.op_count == before

    def test_schedule_is_deterministic(self):
        def workload(vfs):
            _write(vfs, "a", b"x" * 100)
            _write(vfs, "b", b"y" * 100, sync=False)
            vfs.delete("a")

        assert count_mutations(workload) == count_mutations(workload)
        assert list(crash_points(workload)) == \
            list(range(1, count_mutations(workload) + 1))


class TestScheduledFaults:
    def test_write_error_fires_once(self):
        vfs = FaultInjectingVFS()
        vfs.schedule_write_error(2)
        handle = vfs.create("a")
        with pytest.raises(FaultInjectedError):
            handle.append(b"doomed")
        handle.append(b"ok")  # next op succeeds
        handle.sync()
        assert vfs.read_whole("a") == b"ok"

    def test_failed_append_leaves_no_bytes(self):
        vfs = FaultInjectingVFS()
        handle = vfs.create("a")
        handle.append(b"before")
        vfs.schedule_write_error(vfs.op_count + 1)
        with pytest.raises(FaultInjectedError):
            handle.append(b"doomed")
        assert vfs.file_size("a") == len(b"before")

    def test_crash_freezes_the_filesystem(self):
        vfs = FaultInjectingVFS()
        handle = vfs.create("a")
        vfs.schedule_crash(vfs.op_count + 1)
        with pytest.raises(SimulatedCrashError):
            handle.append(b"doomed")
        assert vfs.crashed
        with pytest.raises(SimulatedCrashError):
            handle.append(b"still down")
        with pytest.raises(SimulatedCrashError):
            vfs.create("b")
        with pytest.raises(SimulatedCrashError):
            vfs.list_dir()
        handle.close()  # close never raises (POSIX close promises nothing)


class TestDurability:
    def test_unsynced_appends_drop(self):
        vfs = FaultInjectingVFS()
        _write(vfs, "synced", b"keep me")
        _write(vfs, "unsynced", b"lose me", sync=False)
        image = vfs.crash_image("drop")
        assert image.read_whole("synced") == b"keep me"
        assert image.read_whole("unsynced") == b""

    def test_sync_watermark_is_a_prefix(self):
        vfs = FaultInjectingVFS()
        handle = vfs.create("f")
        handle.append(b"durable")
        handle.sync()
        handle.append(b"-volatile")
        assert vfs.durable_size("f") == len(b"durable")
        assert vfs.crash_image("drop").read_whole("f") == b"durable"

    def test_torn_keeps_whole_device_pages(self):
        vfs = FaultInjectingVFS()
        handle = vfs.create("f")
        handle.append(b"x" * (DEVICE_BLOCK_SIZE + 100))  # never synced
        image = vfs.crash_image("torn")
        assert image.file_size("f") == DEVICE_BLOCK_SIZE
        # A sub-page unsynced tail never survives torn mode.
        assert vfs.crash_image("drop").file_size("f") == 0

    def test_torn_never_truncates_synced_bytes(self):
        vfs = FaultInjectingVFS()
        handle = vfs.create("f")
        handle.append(b"x" * 5000)
        handle.sync()
        handle.append(b"y" * 100)
        image = vfs.crash_image("torn")
        # Page-alignment (4096) lies below the synced watermark (5000):
        # the watermark wins.
        assert image.file_size("f") == 5000

    def test_keep_mode_retains_everything(self):
        vfs = FaultInjectingVFS()
        _write(vfs, "f", b"abc", sync=False)
        assert vfs.crash_image("keep").read_whole("f") == b"abc"

    def test_metadata_ops_are_journaled(self):
        vfs = FaultInjectingVFS()
        _write(vfs, "old", b"data")
        vfs.rename("old", "new")
        _write(vfs, "gone", b"x")
        vfs.delete("gone")
        image = vfs.crash_image("drop")
        assert image.list_dir() == ["new"]
        assert image.read_whole("new") == b"data"

    def test_reboot_in_place(self):
        vfs = FaultInjectingVFS()
        handle = vfs.create("f")
        handle.append(b"durable")
        handle.sync()
        handle.append(b"volatile")
        vfs.schedule_crash(vfs.op_count + 1)
        with pytest.raises(SimulatedCrashError):
            vfs.create("other")
        vfs.reboot("drop")
        assert not vfs.crashed
        assert vfs.read_whole("f") == b"durable"
        _write(vfs, "post", b"works again")

    def test_crash_image_is_independent(self):
        vfs = FaultInjectingVFS()
        _write(vfs, "f", b"abc")
        image = vfs.crash_image("keep")
        image._files["f"].extend(b"mutated")
        assert vfs.read_whole("f") == b"abc"

    def test_unknown_unsynced_mode_rejected(self):
        vfs = FaultInjectingVFS()
        _write(vfs, "f", b"abc", sync=False)
        with pytest.raises(ValueError):
            vfs.crash_image("maybe")


class TestEnumeration:
    def test_run_until_crash_replays_prefix(self):
        def workload(vfs):
            _write(vfs, "a", b"first")
            _write(vfs, "b", b"second")

        total = count_mutations(workload)
        assert total == 6
        # Crash before b's sync: a fully durable, b's bytes volatile.
        vfs = run_until_crash(workload, 6)
        assert vfs.crashed
        image = vfs.crash_image("drop")
        assert image.read_whole("a") == b"first"
        assert image.read_whole("b") == b""

    def test_crash_beyond_schedule_completes(self):
        def workload(vfs):
            _write(vfs, "a", b"x")

        vfs = run_until_crash(workload, 100)
        assert not vfs.crashed
        assert vfs.read_whole("a") == b"x"

    def test_every_crash_point_yields_a_prefix_image(self):
        def workload(vfs):
            _write(vfs, "a", b"1")
            vfs.rename("a", "b")
            _write(vfs, "c", b"3")

        for at_op in crash_points(workload):
            vfs = run_until_crash(workload, at_op)
            assert vfs.crashed
            image = vfs.crash_image("drop")
            for name in image.list_dir():
                assert name in ("a", "b", "c")


class TestErrors:
    def test_missing_file_operations(self):
        vfs = FaultInjectingVFS()
        with pytest.raises(NotFoundError):
            vfs.open_random("ghost")
        with pytest.raises(NotFoundError):
            vfs.delete("ghost")
        with pytest.raises(NotFoundError):
            vfs.rename("ghost", "other")
        with pytest.raises(NotFoundError):
            vfs.file_size("ghost")
        with pytest.raises(NotFoundError):
            vfs.durable_size("ghost")

    def test_io_is_metered(self):
        vfs = FaultInjectingVFS()
        _write(vfs, "f", b"x" * 10000)
        vfs.read_whole("f")
        assert vfs.stats.write_bytes == 10000
        assert vfs.stats.read_bytes == 10000
