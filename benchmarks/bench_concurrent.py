"""Concurrent-client benchmark: background pipeline vs inline maintenance.

Measures what the background flush/compaction pipeline buys a
multi-threaded writer: with inline maintenance a put occasionally pays for
a whole flush (and its cascade of compactions) in its own latency, so the
write tail is dominated by maintenance; the pipeline moves that work to a
background thread and the tail collapses to the stall ladder.  A plain
script, not a pytest module::

    PYTHONPATH=src python benchmarks/bench_concurrent.py \
        [--scale full|ci] [--threads N] [--output FILE] [--check]

Per mode it reports client throughput, put latency percentiles (p50/p99),
and the engine's pipeline gauges (stalls, group commit, background runs).
``--check`` is the CI smoke gate: the background mode must cut the p99 put
latency to at most ``P99_TOLERANCE`` of inline's while keeping at least
``THROUGHPUT_TOLERANCE`` of its throughput.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core.concurrent import ThreadSafeDB  # noqa: E402
from repro.core.database import SecondaryIndexedDB  # noqa: E402
from repro.lsm.options import Options  # noqa: E402
from repro.workloads.ops import Get, Put  # noqa: E402
from repro.workloads.runner import WorkloadRunner  # noqa: E402

SCHEMA = 1

#: CI fails when background p99 put latency exceeds this fraction of the
#: inline p99 measured in the same run (same machine, same interference).
P99_TOLERANCE = 0.90

#: ...or when background throughput drops below this fraction of inline's.
THROUGHPUT_TOLERANCE = 0.60

#: Every mode runs this many times and the run with the lowest p99 wins —
#: same spirit as ``bench_engine_micro``'s best-of timing: the minimum is
#: the run least disturbed by other tenants of the machine, which matters
#: doubly for tail latencies on shared CI runners.
REPEATS = 3

#: Small geometry so flushes and compactions actually happen at benchmark
#: op counts; zlib (the paper's engine default) makes maintenance heavy
#: enough to dominate the inline write tail.
ENGINE_OPTIONS = dict(
    block_size=2048,
    sstable_target_size=16 * 1024,
    # Small enough that well over 1% of puts trigger maintenance: the
    # inline p99 then *structurally* contains a flush, instead of flushes
    # straddling the percentile boundary and making the ratio bimodal.
    memtable_budget=8 * 1024,
    l1_target_size=64 * 1024,
    compression="zlib",
)

SCALES = {
    "full": dict(threads=4, puts_per_thread=4000),
    "ci": dict(threads=4, puts_per_thread=1200),
}


def _streams(threads: int, puts_per_thread: int) -> list:
    """Per-thread op lists: 9 puts then 1 get of an own key, repeated."""
    streams = []
    for tid in range(threads):
        ops = []
        for i in range(puts_per_thread):
            body = "x" * (60 + (i * 7919 + tid) % 80)
            ops.append(Put(f"t{tid}-{i:06d}",
                           {"UserID": f"u{(i + tid) % 97:04d}",
                            "body": body}))
            if i % 10 == 9:
                ops.append(Get(f"t{tid}-{i - 5:06d}"))
        streams.append(ops)
    return streams


def run_mode(background: bool, threads: int, puts_per_thread: int) -> dict:
    best = None
    for _ in range(REPEATS):
        result = _run_mode_once(background, threads, puts_per_thread)
        if best is None or result["put_p99_micros"] < best["put_p99_micros"]:
            best = result
    return best


def _run_mode_once(background: bool, threads: int,
                   puts_per_thread: int) -> dict:
    options = Options(background_compaction=background, **ENGINE_OPTIONS)
    db = SecondaryIndexedDB.open_memory(indexes={}, options=options)
    # The inline engine is single-threaded by contract: concurrent clients
    # must serialize through ThreadSafeDB.  The pipeline engine takes
    # concurrent callers directly.
    target = db if background else ThreadSafeDB(db)
    report = WorkloadRunner(target).run_concurrent(
        _streams(threads, puts_per_thread))
    if report.errors:
        raise RuntimeError(f"benchmark clients failed: {report.errors}")
    db.flush()
    pipeline = db.primary.stats()["pipeline"]
    db.close()
    return {
        "background": background,
        "threads": report.threads,
        "total_ops": report.total_ops,
        "wall_seconds": round(report.wall_seconds, 4),
        "ops_per_sec": round(report.ops_per_sec, 1),
        "put_mean_micros": round(report.mean_micros("put"), 2),
        "put_p50_micros": round(report.percentile_micros("put", 0.50), 2),
        "put_p99_micros": round(report.percentile_micros("put", 0.99), 2),
        "put_max_micros": round(
            report.percentile_micros("put", 1.0), 2),
        "get_p99_micros": round(report.percentile_micros("get", 0.99), 2),
        "pipeline": {
            "stall_events": pipeline["stall_events"],
            "stall_seconds": round(pipeline["stall_seconds"], 4),
            "slowdown_events": pipeline["slowdown_events"],
            "mean_group_batches": round(pipeline["mean_group_batches"], 3),
            "max_group_batches": pipeline["max_group_batches"],
            "bg_flushes": pipeline["bg_flushes"],
            "bg_compactions": pipeline["bg_compactions"],
        },
    }


def run_benchmark(scale: str, threads: int | None) -> dict:
    cfg = SCALES[scale]
    n_threads = threads or cfg["threads"]
    inline = run_mode(False, n_threads, cfg["puts_per_thread"])
    background = run_mode(True, n_threads, cfg["puts_per_thread"])
    comparison = {
        "throughput_ratio": round(
            background["ops_per_sec"] / inline["ops_per_sec"], 3),
        "p99_ratio": round(
            background["put_p99_micros"] / inline["put_p99_micros"], 3),
        "p50_ratio": round(
            background["put_p50_micros"] / inline["put_p50_micros"], 3),
    }
    return {
        "schema": SCHEMA,
        "harness": "benchmarks/bench_concurrent.py",
        "scale": scale,
        "python": sys.version.split()[0],
        "inline": inline,
        "background": background,
        "comparison": comparison,
    }


def check(report: dict) -> int:
    """CI gate: the pipeline must actually deliver its latency win."""
    comparison = report["comparison"]
    failures = []
    p99 = comparison["p99_ratio"]
    status = "ok" if p99 <= P99_TOLERANCE else "REGRESSED"
    print(f"  put_p99 background/inline   {p99:6.2f}x  "
          f"(must be <= {P99_TOLERANCE})  [{status}]")
    if p99 > P99_TOLERANCE:
        failures.append("put_p99")
    throughput = comparison["throughput_ratio"]
    status = "ok" if throughput >= THROUGHPUT_TOLERANCE else "REGRESSED"
    print(f"  throughput background/inline{throughput:6.2f}x  "
          f"(must be >= {THROUGHPUT_TOLERANCE})  [{status}]")
    if throughput < THROUGHPUT_TOLERANCE:
        failures.append("throughput")
    if failures:
        print(f"FAIL: background pipeline lost its edge on "
              f"{', '.join(failures)}")
        return 1
    print("concurrent benchmark smoke: pipeline win holds")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="full")
    parser.add_argument("--threads", type=int, default=None,
                        help="override the scale's client thread count")
    parser.add_argument("--output", help="write the JSON report here")
    parser.add_argument("--check", action="store_true",
                        help="gate on the background-vs-inline ratios "
                        "(CI mode)")
    args = parser.parse_args(argv)

    report = run_benchmark(args.scale, args.threads)
    print(json.dumps(report, indent=2))

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        return check(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
