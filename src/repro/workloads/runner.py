"""Workload execution and measurement.

The runner applies an operation stream to a
:class:`~repro.core.database.SecondaryIndexedDB`, accumulating per-operation
wall time and — the paper's primary metric — per-table I/O-meter series
sampled every ``sample_every`` operations ("we record the performance once
per million operations"; scaled here).  The sampled series feed Figures 9
and 12-15 directly.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.database import SecondaryIndexedDB
from repro.workloads.ops import Delete, Get, Lookup, Operation, Put, RangeLookup


def nearest_rank_index(fraction: float, n: int) -> int:
    """Index of the nearest-rank percentile in a sorted list of ``n``.

    The nearest-rank definition: the p-th percentile is the smallest
    value with at least ``p`` of the sample at or below it, i.e. rank
    ``ceil(fraction * n)`` (1-based).  The naive ``int(fraction * n)``
    is off by one — p50 of two samples would pick the *larger* — and
    only the clamp kept p100 in bounds.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    return min(n - 1, max(0, math.ceil(fraction * n) - 1))


class LatencyRecorder:
    """Thread-safe latency accumulator with nearest-rank percentiles.

    One recorder per operation type (or per whatever slice is being
    measured); many client threads may :meth:`record` into it
    concurrently.  Shared by :class:`WorkloadRunner` and the server
    benchmark so every latency number in the repo is computed one way.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seconds: list[float] = []

    def record(self, seconds: float) -> None:
        with self._lock:
            self._seconds.append(seconds)

    def record_many(self, seconds: Iterable[float]) -> None:
        values = list(seconds)
        with self._lock:
            self._seconds.extend(values)

    def merge(self, other: "LatencyRecorder") -> None:
        self.record_many(other.snapshot())

    def snapshot(self) -> list[float]:
        with self._lock:
            return list(self._seconds)

    def __len__(self) -> int:
        with self._lock:
            return len(self._seconds)

    def mean_micros(self) -> float:
        with self._lock:
            if not self._seconds:
                return 0.0
            return sum(self._seconds) * 1e6 / len(self._seconds)

    def percentile_micros(self, fraction: float) -> float:
        """Nearest-rank percentile (e.g. ``0.99``) in microseconds."""
        with self._lock:
            if not self._seconds:
                return 0.0
            ordered = sorted(self._seconds)
        return ordered[nearest_rank_index(fraction, len(ordered))] * 1e6

    def summary_micros(self,
                       fractions: tuple[float, ...] = (0.5, 0.99)) -> dict:
        """``{"count", "mean_micros", "p50_micros", ...}`` in one pass."""
        with self._lock:
            ordered = sorted(self._seconds)
        summary: dict[str, float | int] = {"count": len(ordered)}
        if not ordered:
            summary["mean_micros"] = 0.0
            for fraction in fractions:
                summary[f"p{round(fraction * 100)}_micros"] = 0.0
            return summary
        summary["mean_micros"] = sum(ordered) * 1e6 / len(ordered)
        for fraction in fractions:
            summary[f"p{round(fraction * 100)}_micros"] = \
                ordered[nearest_rank_index(fraction, len(ordered))] * 1e6
        return summary


@dataclass
class Sample:
    """One point of the time series recorded during a run."""

    ops_done: int
    elapsed_seconds: float
    primary_read_blocks: int
    primary_write_blocks: int
    index_read_blocks: int
    index_write_blocks: int
    primary_compaction_blocks: int
    index_compaction_blocks: int


@dataclass
class RunReport:
    """Aggregate results of one workload run."""

    op_counts: dict[str, int] = field(default_factory=dict)
    op_seconds: dict[str, float] = field(default_factory=dict)
    samples: list[Sample] = field(default_factory=list)
    #: Device blocks read, attributed to the operation type that caused
    #: them (Figures 13-15 plot GET and LOOKUP read I/O separately).
    read_blocks_by_op: dict[str, int] = field(default_factory=dict)
    write_blocks_by_op: dict[str, int] = field(default_factory=dict)

    @property
    def total_ops(self) -> int:
        return sum(self.op_counts.values())

    @property
    def total_seconds(self) -> float:
        return sum(self.op_seconds.values())

    def mean_micros(self, op_name: str | None = None) -> float:
        """Mean microseconds per operation (of one type, or overall)."""
        if op_name is None:
            ops = self.total_ops
            seconds = self.total_seconds
        else:
            ops = self.op_counts.get(op_name, 0)
            seconds = self.op_seconds.get(op_name, 0.0)
        if ops == 0:
            return 0.0
        return seconds * 1e6 / ops


@dataclass
class ConcurrentRunReport:
    """Results of a multi-threaded run: latency distributions, no I/O
    attribution (the shared meters cannot attribute blocks to an op when
    several ops are in flight)."""

    threads: int
    wall_seconds: float
    op_counts: dict[str, int] = field(default_factory=dict)
    latencies_by_op: dict[str, list[float]] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        return sum(self.op_counts.values())

    @property
    def ops_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_ops / self.wall_seconds

    def percentile_micros(self, op_name: str, fraction: float) -> float:
        """Nearest-rank latency percentile of one op type, microseconds."""
        latencies = sorted(self.latencies_by_op.get(op_name, ()))
        if not latencies:
            return 0.0
        return latencies[nearest_rank_index(fraction, len(latencies))] * 1e6

    def mean_micros(self, op_name: str | None = None) -> float:
        if op_name is None:
            seconds = sum(sum(vals) for vals in self.latencies_by_op.values())
            ops = self.total_ops
        else:
            seconds = sum(self.latencies_by_op.get(op_name, ()))
            ops = self.op_counts.get(op_name, 0)
        if ops == 0:
            return 0.0
        return seconds * 1e6 / ops


class WorkloadRunner:
    """Executes operations against one database, metering as it goes."""

    def __init__(self, db: SecondaryIndexedDB,
                 sample_every: int = 1000) -> None:
        self.db = db
        self.sample_every = sample_every

    def run(self, operations: Iterable[Operation]) -> RunReport:
        report = RunReport()
        done = 0
        meters = self._all_meters()
        for operation in operations:
            reads_before = sum(stats.read_blocks for stats in meters)
            writes_before = sum(stats.write_blocks for stats in meters)
            started = time.perf_counter()
            self._apply(operation)
            elapsed = time.perf_counter() - started
            name = operation.op_name
            report.op_counts[name] = report.op_counts.get(name, 0) + 1
            report.op_seconds[name] = report.op_seconds.get(name, 0.0) \
                + elapsed
            report.read_blocks_by_op[name] = \
                report.read_blocks_by_op.get(name, 0) \
                + sum(stats.read_blocks for stats in meters) - reads_before
            report.write_blocks_by_op[name] = \
                report.write_blocks_by_op.get(name, 0) \
                + sum(stats.write_blocks for stats in meters) - writes_before
            done += 1
            if done % self.sample_every == 0:
                report.samples.append(self._sample(done, report))
        report.samples.append(self._sample(done, report))
        return report

    def run_concurrent(self, streams: list[list[Operation]]
                       ) -> ConcurrentRunReport:
        """Apply one operation stream per client thread, concurrently.

        The database must be safe for concurrent callers: either the
        engine's background pipeline (``background_compaction=True`` and
        no stand-alone indexes) or a
        :class:`~repro.core.concurrent.ThreadSafeDB` wrapper.  Per-op I/O
        attribution is skipped — overlapping ops share the meters — so the
        report carries only counts and latency distributions.
        """
        barrier = threading.Barrier(len(streams) + 1)
        locals_: list[tuple[dict, dict]] = [
            ({}, {}) for _ in streams]
        errors: list[str] = []
        errors_lock = threading.Lock()

        def client(index: int, operations: list[Operation]) -> None:
            counts, latencies = locals_[index]
            barrier.wait()
            try:
                for operation in operations:
                    started = time.perf_counter()
                    self._apply(operation)
                    elapsed = time.perf_counter() - started
                    name = operation.op_name
                    counts[name] = counts.get(name, 0) + 1
                    latencies.setdefault(name, []).append(elapsed)
            except Exception as exc:  # noqa: BLE001 - reported, not lost
                with errors_lock:
                    errors.append(f"client {index}: {exc!r}")

        threads = [threading.Thread(target=client, args=(i, ops),
                                    name=f"client-{i}")
                   for i, ops in enumerate(streams)]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started

        report = ConcurrentRunReport(threads=len(streams),
                                     wall_seconds=wall, errors=errors)
        for counts, latencies in locals_:
            for name, count in counts.items():
                report.op_counts[name] = \
                    report.op_counts.get(name, 0) + count
            for name, values in latencies.items():
                report.latencies_by_op.setdefault(name, []).extend(values)
        return report

    def _all_meters(self) -> list:
        """The distinct IOStats objects of every table in the database."""
        meters = [self.db.primary.vfs.stats]
        for index in self.db.indexes.values():
            index_db = getattr(index, "index_db", None)
            if index_db is None:
                continue
            if all(index_db.vfs.stats is not stats for stats in meters):
                meters.append(index_db.vfs.stats)
        return meters

    def _apply(self, operation: Operation) -> None:
        if isinstance(operation, Put):
            self.db.put(operation.key, operation.document)
        elif isinstance(operation, Get):
            self.db.get(operation.key)
        elif isinstance(operation, Delete):
            self.db.delete(operation.key)
        elif isinstance(operation, Lookup):
            self.db.lookup(operation.attribute, operation.value, operation.k)
        elif isinstance(operation, RangeLookup):
            self.db.range_lookup(operation.attribute, operation.low,
                                 operation.high, operation.k)
        else:
            raise TypeError(f"unknown operation: {operation!r}")

    def _sample(self, done: int, report: RunReport) -> Sample:
        primary_stats = self.db.primary.vfs.stats
        index_read = index_write = index_compaction = 0
        seen_vfs = {id(self.db.primary.vfs)}
        for index in self.db.indexes.values():
            index_db = getattr(index, "index_db", None)
            if index_db is None:
                continue
            stats = index_db.vfs.stats
            if id(index_db.vfs) in seen_vfs:
                continue  # shared VFS: already counted under primary
            seen_vfs.add(id(index_db.vfs))
            index_read += stats.read_blocks
            index_write += stats.write_blocks
            index_compaction += (
                stats.reads_by_category.get("compaction", 0)
                + stats.writes_by_category.get("compaction", 0)
                + stats.writes_by_category.get("flush", 0))
        return Sample(
            ops_done=done,
            elapsed_seconds=report.total_seconds,
            primary_read_blocks=primary_stats.read_blocks,
            primary_write_blocks=primary_stats.write_blocks,
            index_read_blocks=index_read,
            index_write_blocks=index_write,
            primary_compaction_blocks=(
                primary_stats.reads_by_category.get("compaction", 0)
                + primary_stats.writes_by_category.get("compaction", 0)
                + primary_stats.writes_by_category.get("flush", 0)),
            index_compaction_blocks=index_compaction,
        )
