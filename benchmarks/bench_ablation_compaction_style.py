"""Ablation: LevelDB's leveled compaction vs AsterixDB's whole-level merges.

The paper contrasts the two layouts in Section 1 ("in some systems like
LevelDB, lower levels have more SSTables of the same size, and in some
like AsterixDB, lower levels have just one but larger SSTable") and
Section 4.2 leans on LevelDB's round-robin file choice to explain the
Composite index's loss of time order.  This ablation quantifies the
operational difference under the same ingest: merge granularity, total
compaction traffic, and Lazy-index fragment spread.
"""

import pytest

from harness import BENCH_PROFILE, ResultTable, bench_options

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.workloads.tweets import TweetGenerator

_N = 4000
_RESULTS: dict = {}

_TABLE = ResultTable(
    "ablation_compaction_style",
    "Ablation — leveled vs full-level compaction (Lazy UserID index)",
    ["style", "compactions", "avg_merge_kb", "compaction_write_blocks",
     "lookup_levels_per_query"])


def _run(style):
    options = bench_options(compaction_style=style)
    db = SecondaryIndexedDB.open_memory(
        indexes={"UserID": IndexKind.LAZY}, options=options)
    generator = TweetGenerator(BENCH_PROFILE, seed=77)
    for key, doc in generator.tweets(_N):
        db.put(key, doc)
    return db


@pytest.mark.parametrize("style", ["leveled", "full_level"])
def test_ablation_compaction_style(benchmark, style):
    db = benchmark.pedantic(_run, args=(style,), rounds=1, iterations=1)
    stats = db.primary.compactor.stats
    index = db.indexes["UserID"]
    index_stats = index.index_db.compactor.stats
    compactions = stats.compaction_count + index_stats.compaction_count
    merged_bytes = stats.bytes_compacted_in + index_stats.bytes_compacted_in
    write_blocks = (
        db.primary.vfs.stats.writes_by_category.get("compaction", 0)
        + index.index_db.vfs.stats.writes_by_category.get("compaction", 0))

    index.levels_visited = 0
    index.lookups = 0
    users = [f"u{r:05d}" for r in range(20)]
    for user in users:
        db.lookup("UserID", user, 10)
    levels_per_lookup = index.levels_visited / len(users)

    _TABLE.add(style, compactions,
               f"{merged_bytes / max(1, compactions) / 1024:.1f}",
               write_blocks, f"{levels_per_lookup:.2f}")
    _RESULTS[style] = {
        "compactions": compactions,
        "avg_merge": merged_bytes / max(1, compactions),
        "levels": levels_per_lookup,
    }
    db.close()
    if len(_RESULTS) == 2:
        _TABLE.write()
        leveled = _RESULTS["leveled"]
        full = _RESULTS["full_level"]
        # Whole-level merges: fewer compactions, each moving more data.
        assert full["compactions"] < leveled["compactions"]
        assert full["avg_merge"] > leveled["avg_merge"]
        # Fragment spread stays bounded either way: early termination
        # still resolves hot-user lookups within a few levels.
        assert full["levels"] <= leveled["levels"] + 2
