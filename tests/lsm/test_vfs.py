"""Virtual filesystems and I/O accounting."""

import pytest

from repro.lsm.errors import NotFoundError
from repro.lsm.vfs import (
    Category,
    DEVICE_BLOCK_SIZE,
    IOStats,
    LocalVFS,
    MemoryVFS,
)


@pytest.fixture(params=["memory", "local"])
def any_vfs(request, tmp_path):
    if request.param == "memory":
        return MemoryVFS()
    return LocalVFS(str(tmp_path / "vfsroot"))


class TestFileOperations:
    def test_create_write_read(self, any_vfs):
        handle = any_vfs.create("dir/file.bin")
        handle.append(b"hello ")
        handle.append(b"world")
        handle.sync()
        handle.close()
        assert any_vfs.exists("dir/file.bin")
        assert any_vfs.file_size("dir/file.bin") == 11
        reader = any_vfs.open_random("dir/file.bin")
        assert reader.read_at(0, 11) == b"hello world"
        assert reader.read_at(6, 5) == b"world"
        assert reader.size == 11
        reader.close()

    def test_read_whole_write_whole(self, any_vfs):
        any_vfs.write_whole("f", b"payload")
        assert any_vfs.read_whole("f") == b"payload"

    def test_missing_file(self, any_vfs):
        assert not any_vfs.exists("nope")
        with pytest.raises(NotFoundError):
            any_vfs.open_random("nope")
        with pytest.raises(NotFoundError):
            any_vfs.delete("nope")
        with pytest.raises(NotFoundError):
            any_vfs.file_size("nope")
        with pytest.raises(NotFoundError):
            any_vfs.rename("nope", "other")

    def test_delete(self, any_vfs):
        any_vfs.write_whole("f", b"x")
        any_vfs.delete("f")
        assert not any_vfs.exists("f")

    def test_rename(self, any_vfs):
        any_vfs.write_whole("old", b"data")
        any_vfs.rename("old", "new")
        assert not any_vfs.exists("old")
        assert any_vfs.read_whole("new") == b"data"

    def test_rename_overwrites(self, any_vfs):
        any_vfs.write_whole("a", b"aaa")
        any_vfs.write_whole("b", b"bbb")
        any_vfs.rename("a", "b")
        assert any_vfs.read_whole("b") == b"aaa"

    def test_list_dir_with_prefix(self, any_vfs):
        any_vfs.write_whole("db/000001.ldb", b"1")
        any_vfs.write_whole("db/000002.log", b"2")
        any_vfs.write_whole("other/file", b"3")
        assert any_vfs.list_dir("db/") == ["db/000001.ldb", "db/000002.log"]

    def test_total_size(self, any_vfs):
        any_vfs.write_whole("db/a", b"12345")
        any_vfs.write_whole("db/b", b"67")
        assert any_vfs.total_size("db/") == 7


class TestAccounting:
    def test_reads_charged_in_device_blocks(self):
        vfs = MemoryVFS()
        vfs.write_whole("f", b"x" * (DEVICE_BLOCK_SIZE * 2 + 1))
        vfs.reset_stats()
        reader = vfs.open_random("f")
        reader.read_at(0, 100, Category.DATA)
        assert vfs.stats.read_blocks == 1
        reader.read_at(0, DEVICE_BLOCK_SIZE + 1, Category.DATA)
        assert vfs.stats.read_blocks == 3
        assert vfs.stats.read_ops == 2

    def test_category_split(self):
        vfs = MemoryVFS()
        handle = vfs.create("f")
        handle.append(b"x" * 100, Category.WAL)
        handle.append(b"y" * 100, Category.COMPACTION)
        assert vfs.stats.writes_by_category["wal"] == 1
        assert vfs.stats.writes_by_category["compaction"] == 1

    def test_uncharged_read(self):
        vfs = MemoryVFS()
        vfs.write_whole("f", b"payload")
        vfs.reset_stats()
        reader = vfs.open_random("f")
        assert reader.read_at(0, 7, charge=False) == b"payload"
        assert vfs.stats.read_blocks == 0

    def test_snapshot_and_delta(self):
        stats = IOStats()
        stats.record_read(100, Category.DATA)
        before = stats.snapshot()
        stats.record_read(5000, Category.INDEX)
        stats.record_write(100, Category.FLUSH)
        delta = stats.delta(before)
        assert delta.read_ops == 1
        assert delta.read_blocks == 2
        assert delta.write_ops == 1
        assert delta.reads_by_category == {"index": 2}
        assert delta.total_blocks == 3

    def test_zero_byte_access(self):
        stats = IOStats()
        stats.record_read(0, Category.DATA)
        assert stats.read_blocks == 0
        assert stats.read_ops == 1
