"""Property-based tests for the low-level codecs (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composite import make_composite_key, split_composite_key
from repro.core.posting import (
    PostingEntry,
    decode_posting_list,
    encode_posting_list,
)
from repro.lsm.keys import (
    KIND_DELETE,
    KIND_MERGE,
    KIND_VALUE,
    MAX_SEQUENCE,
    decode_varint,
    encode_varint,
    pack_internal_key,
    unpack_internal_key,
)
from repro.lsm.zonemap import decode_attribute, encode_attribute

_kinds = st.sampled_from([KIND_DELETE, KIND_VALUE, KIND_MERGE])
_attr_values = st.one_of(
    st.integers(min_value=-(2**52), max_value=2**52),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e15, max_value=1e15),
    st.text(max_size=50),
)


class TestVarint:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip(self, value):
        decoded, offset = decode_varint(encode_varint(value))
        assert decoded == value
        assert offset == len(encode_varint(value))

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=20))
    def test_concatenated_stream(self, values):
        blob = b"".join(encode_varint(v) for v in values)
        offset = 0
        decoded = []
        for _ in values:
            value, offset = decode_varint(blob, offset)
            decoded.append(value)
        assert decoded == values
        assert offset == len(blob)


class TestInternalKeys:
    @given(st.binary(max_size=64),
           st.integers(min_value=0, max_value=MAX_SEQUENCE), _kinds)
    def test_roundtrip(self, user_key, seq, kind):
        ikey = unpack_internal_key(pack_internal_key(user_key, seq, kind))
        assert (ikey.user_key, ikey.seq, ikey.kind) == (user_key, seq, kind)

    @given(st.binary(max_size=16), st.binary(max_size=16),
           st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000))
    def test_order_matches_tuple_order(self, key_a, key_b, seq_a, seq_b):
        ikey_a = unpack_internal_key(pack_internal_key(key_a, seq_a, KIND_VALUE))
        ikey_b = unpack_internal_key(pack_internal_key(key_b, seq_b, KIND_VALUE))
        want = (key_a, -seq_a) < (key_b, -seq_b)
        assert (ikey_a.sort_key() < ikey_b.sort_key()) == want


class TestAttributeEncoding:
    @given(_attr_values)
    def test_roundtrip(self, value):
        decoded = decode_attribute(encode_attribute(value))
        if isinstance(value, str):
            assert decoded == value
        else:
            assert decoded == float(value)

    @given(_attr_values, _attr_values)
    def test_order_preserving_within_type(self, a, b):
        both_numeric = isinstance(a, (int, float)) and \
            isinstance(b, (int, float))
        both_text = isinstance(a, str) and isinstance(b, str)
        if both_numeric:
            assert (encode_attribute(a) < encode_attribute(b)) == \
                (float(a) < float(b))
        elif both_text:
            # UTF-8 byte order equals code-point order.
            assert (encode_attribute(a) < encode_attribute(b)) == \
                ([ord(c) for c in a] < [ord(c) for c in b])
        else:
            # Numbers always sort before strings.
            numeric_first = isinstance(a, (int, float))
            assert (encode_attribute(a) < encode_attribute(b)) == numeric_first


class TestCompositeKeys:
    @given(_attr_values, st.binary(max_size=40))
    def test_roundtrip(self, value, primary_key):
        encoded = encode_attribute(value)
        got_attr, got_pk = split_composite_key(
            make_composite_key(encoded, primary_key))
        assert (got_attr, got_pk) == (encoded, primary_key)

    @given(_attr_values, _attr_values,
           st.text(max_size=10), st.text(max_size=10))
    @settings(max_examples=200)
    def test_order_preserving(self, value_a, value_b, pk_a, pk_b):
        enc_a = encode_attribute(value_a)
        enc_b = encode_attribute(value_b)
        comp_a = make_composite_key(enc_a, pk_a.encode())
        comp_b = make_composite_key(enc_b, pk_b.encode())
        want = (enc_a, pk_a.encode()) < (enc_b, pk_b.encode())
        assert (comp_a < comp_b) == want


class TestPostingLists:
    _entries = st.lists(
        st.builds(PostingEntry,
                  key=st.text(min_size=1, max_size=10),
                  seq=st.integers(min_value=0, max_value=10**9),
                  deleted=st.booleans()),
        max_size=30)

    @given(_entries)
    def test_roundtrip(self, entries):
        assert decode_posting_list(encode_posting_list(entries)) == entries
