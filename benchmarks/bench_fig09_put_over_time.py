"""Figure 9: PUT performance and index-compaction I/O as the database grows.

* (a/b) mean PUT latency per attribute index, sampled as the store grows —
  roughly flat for every variant except Eager;
* (c) cumulative index-table I/O for compaction+maintenance — Eager's
  UserID curve grows super-linearly (its posting lists keep being
  rewritten), while its time-correlated CreationTime index stays cheaper
  ("the posting list is created sequentially"), and Lazy/Composite stay
  near-linear.
"""

import time

import pytest

from harness import (
    BENCH_OPTIONS,
    BENCH_PROFILE,
    ResultTable,
    STANDALONE_KINDS,
    index_io,
)

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.workloads.tweets import TweetGenerator

_CHECKPOINTS = [1000, 2000, 3000, 4000]
_SERIES: dict = {}


def _build_with_sampling(kind, attribute):
    generator = TweetGenerator(BENCH_PROFILE, seed=5)
    db = SecondaryIndexedDB.open_memory(
        indexes={attribute: kind}, options=BENCH_OPTIONS)
    samples = []
    done = 0
    window_started = time.perf_counter()
    for checkpoint in _CHECKPOINTS:
        while done < checkpoint:
            key, doc = generator.next_tweet()
            db.put(key, doc)
            done += 1
        window_seconds = time.perf_counter() - window_started
        window_started = time.perf_counter()
        samples.append({
            "puts": done,
            "window_us_per_put": window_seconds * 1e6 / _CHECKPOINTS[0],
            "index_io": index_io(db),
        })
    db.close()
    return samples


@pytest.mark.parametrize("attribute", ["UserID", "CreationTime"])
@pytest.mark.parametrize("kind", STANDALONE_KINDS, ids=lambda k: k.value)
def test_fig09_put_over_time(benchmark, kind, attribute):
    samples = benchmark.pedantic(_build_with_sampling,
                                 args=(kind, attribute),
                                 rounds=1, iterations=1)
    _SERIES[(kind, attribute)] = samples
    if len(_SERIES) == len(STANDALONE_KINDS) * 2:
        _finalize()


def _finalize():
    latency = ResultTable(
        "fig09ab_put_latency",
        "Figure 9a/b — PUT latency over time (us/put per 1000-put window)",
        ["variant", "attribute", *[f"@{c}" for c in _CHECKPOINTS]])
    compaction = ResultTable(
        "fig09c_index_io",
        "Figure 9c — cumulative index-table I/O blocks (maintenance + "
        "compaction)",
        ["variant", "attribute", *[f"@{c}" for c in _CHECKPOINTS]])
    for (kind, attribute), samples in sorted(
            _SERIES.items(), key=lambda item: (item[0][1], item[0][0].value)):
        latency.add(kind.value, attribute,
                    *[f"{s['window_us_per_put']:.0f}" for s in samples])
        compaction.add(kind.value, attribute,
                       *[s["index_io"]["write"] + s["index_io"]["read"]
                         for s in samples])
    latency.write()
    compaction.write()

    def total_io(kind, attribute):
        return (_SERIES[(kind, attribute)][-1]["index_io"]["write"]
                + _SERIES[(kind, attribute)][-1]["index_io"]["read"])

    # Eager's non-time-correlated index I/O dwarfs Lazy's and Composite's.
    assert total_io(IndexKind.EAGER, "UserID") > \
        3 * total_io(IndexKind.LAZY, "UserID")
    assert total_io(IndexKind.EAGER, "UserID") > \
        3 * total_io(IndexKind.COMPOSITE, "UserID")
    # Eager is cheaper on the time-correlated attribute than on UserID.
    assert total_io(IndexKind.EAGER, "CreationTime") < \
        total_io(IndexKind.EAGER, "UserID")
    # Super-linear growth check for Eager/UserID: the last thousand puts
    # cost more I/O than the first thousand.
    series = _SERIES[(IndexKind.EAGER, "UserID")]
    first_window = series[0]["index_io"]["write"]
    last_window = (series[-1]["index_io"]["write"]
                   - series[-2]["index_io"]["write"])
    assert last_window > first_window
