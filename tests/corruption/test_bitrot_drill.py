"""Exhaustive bit-rot drill: flip EVERY byte, one at a time.

For each byte of a small live SSTable (and of a WAL tail) the drill
inverts that byte, opens the database fresh (paranoid reads, quarantine
policy) and scans everything.  The invariant is absolute:

    **No single-byte flip may ever yield a wrong result.**

Each flip must be either *harmless* (results identical to the
uncorrupted twin — the byte was padding or redundant) or *detected*
(scan raises nothing, but some rows are missing AND the corruption
counters moved / recovery reported the damage).  A flip that silently
changed a returned value is a CRC hole and fails the drill.

Set ``CORRUPTION_DRILL_LOG_DIR`` to keep per-offset outcome logs (the CI
corruption job uploads them as artifacts).
"""

from __future__ import annotations

import os

from repro.lsm.db import DB
from repro.lsm.errors import CorruptionError
from repro.lsm.faults import FaultInjectingVFS

from drill_utils import corruption_options


def drill_options():
    # One table, small blocks: every part of the format (footer, index,
    # meta, several data blocks) is within the flip range.
    return corruption_options(paranoid_checks=True, block_size=512,
                              sstable_target_size=64 * 1024,
                              memtable_budget=64 * 1024)


def build_image(flush: bool) -> tuple[dict[str, bytes], dict[bytes, bytes]]:
    """Build a tiny DB; returns ``(file_image, expected_rows)``."""
    vfs = FaultInjectingVFS()
    db = DB.open(vfs, "db", drill_options())
    expected = {}
    for i in range(40):
        key = f"k{i:02d}".encode()
        value = f"value-{i:02d}-".encode() * 2
        db.put(key, value)
        expected[key] = value
    if flush:
        db.flush()
    db.close()
    image = {name: bytes(file.data) for name, file in vfs._files.items()}
    return image, expected


def vfs_from_image(image: dict[str, bytes],
                   flip: tuple[str, int] | None = None) -> FaultInjectingVFS:
    vfs = FaultInjectingVFS()
    for name, data in image.items():
        handle = vfs.create(name)
        handle.append(data)
        handle.sync()
        handle.close()
    vfs.op_count = 0
    if flip is not None:
        name, offset = flip
        vfs._files[name].data[offset] ^= 0xFF
    return vfs


def open_log(basename: str):
    log_dir = os.environ.get("CORRUPTION_DRILL_LOG_DIR")
    if not log_dir:
        return None
    os.makedirs(log_dir, exist_ok=True)
    return open(os.path.join(log_dir, basename), "w")


class TestExhaustiveTableBitrot:
    def test_every_flipped_byte_is_detected_or_harmless(self):
        image, expected = build_image(flush=True)
        victim = table_files_from_image(image)[0]
        size = len(image[victim])
        log = open_log("bitrot-table.log")
        outcomes = {"harmless": 0, "detected": 0}
        try:
            for offset in range(size):
                vfs = vfs_from_image(image, flip=(victim, offset))
                db = DB.open(vfs, "db", drill_options())
                got = dict(db.scan())  # must not raise under quarantine
                stats = db.stats()["corruption"]
                for key, value in got.items():
                    assert expected[key] == value, (
                        f"flip at byte {offset} of {victim} silently "
                        f"changed {key!r}")
                if got == expected and not stats["events"] \
                        and not stats["filter_degradations"]:
                    outcome = "harmless"
                else:
                    # Rows missing or damage noticed: must be *detected*.
                    assert stats["events"] or stats["filter_degradations"], (
                        f"flip at byte {offset} of {victim} lost rows "
                        f"without any detection")
                    outcome = "detected"
                outcomes[outcome] += 1
                if log:
                    log.write(f"{victim} byte {offset}: {outcome} "
                              f"(rows {len(got)}/{len(expected)})\n")
                db.close()
        finally:
            if log:
                log.write(f"summary: {outcomes}\n")
                log.close()
        # The drill is only meaningful if flips actually landed in live
        # data: most of a data file is CRC-protected payload.
        assert outcomes["detected"] > size // 2

    def test_flip_plus_repair_restores_consistency(self):
        from repro.lsm.repair import repair_db

        image, expected = build_image(flush=True)
        victim = table_files_from_image(image)[0]
        # A handful of representative offsets: head, every block-size
        # stride, and the footer region.
        size = len(image[victim])
        offsets = sorted(set(
            list(range(0, size, 97)) + [size - 1, size - 20, size - 48]))
        for offset in offsets:
            vfs = vfs_from_image(image, flip=(victim, offset))
            repair_db(vfs, "db", drill_options())
            db = DB.open(vfs, "db", drill_options())
            got = dict(db.scan())
            for key, value in got.items():
                assert expected[key] == value
            assert db.verify_integrity().ok, (
                f"repair after flip at {offset} left inconsistency")
            assert db.scrub().clean
            db.close()


class TestExhaustiveWalBitrot:
    def test_every_flipped_wal_byte_is_detected_or_harmless(self):
        image, expected = build_image(flush=False)  # rows live in the WAL
        wal = wal_files_from_image(image)[-1]
        size = len(image[wal])
        log = open_log("bitrot-wal.log")
        outcomes = {"harmless": 0, "detected": 0, "rejected": 0}
        try:
            for offset in range(size):
                vfs = vfs_from_image(image, flip=(wal, offset))
                try:
                    db = DB.open(vfs, "db", drill_options())
                except CorruptionError:
                    # Mid-file WAL damage: recovery refuses loudly.
                    outcomes["rejected"] += 1
                    if log:
                        log.write(f"{wal} byte {offset}: rejected\n")
                    continue
                got = dict(db.scan())
                for key, value in got.items():
                    assert expected[key] == value, (
                        f"flip at WAL byte {offset} silently changed "
                        f"{key!r}")
                outcome = "harmless" if got == expected else "detected"
                outcomes[outcome] += 1
                if log:
                    log.write(f"{wal} byte {offset}: {outcome} "
                              f"(rows {len(got)}/{len(expected)})\n")
                db.close()
        finally:
            if log:
                log.write(f"summary: {outcomes}\n")
                log.close()
        # Almost every byte of a WAL is CRC-covered record data; flips
        # must overwhelmingly be caught, not absorbed.
        caught = outcomes["detected"] + outcomes["rejected"]
        assert caught > size // 2


def table_files_from_image(image: dict[str, bytes]) -> list[str]:
    return sorted(n for n in image if n.endswith(".ldb"))


def wal_files_from_image(image: dict[str, bytes]) -> list[str]:
    return sorted(n for n in image if n.endswith(".log"))
