"""YCSB-style workloads (Cooper et al., SoCC 2010 — the paper's [6]).

The paper built its own generator because "there is no workload generator
which allows fine-grained control of the ratio of queries on primary to
secondary attributes" — YCSB only exercises primary-key operations.  This
module provides the standard YCSB core workloads anyway, for two reasons:
they are the lingua franca for key-value store comparisons, and they stress
exactly the paths (zipfian re-reads, read-modify-write, short scans) that
the Twitter workloads do not.

Core workload definitions (from the YCSB distribution):

========  =========================================  =====================
Workload  Mix                                        Distribution
========  =========================================  =====================
A         50% read / 50% update                      zipfian
B         95% read / 5% update                       zipfian
C         100% read                                  zipfian
D         95% read / 5% insert                       latest
E         95% scan / 5% insert                       zipfian (+uniform len)
F         50% read / 50% read-modify-write           zipfian
========  =========================================  =====================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.records import Document
from repro.workloads.ops import Get, Operation, Put, RangeLookup

#: The YCSB core mixes: fractions of read / update / insert / scan / rmw.
CORE_WORKLOADS: dict[str, dict[str, float]] = {
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.5, "rmw": 0.5},
}

_MAX_SCAN_LENGTH = 100


class ZipfianGenerator:
    """YCSB's zipfian item chooser over ``[0, n)`` (exponent ~0.99).

    Uses the same cumulative-weights approach as the tweet generator;
    ``n`` may grow as records are inserted (D/E's "latest" behaviour is
    provided separately).
    """

    def __init__(self, n: int, theta: float = 0.99,
                 rng: random.Random | None = None) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self._rng = rng or random.Random(0)
        self._theta = theta
        self._cumulative: list[float] = []
        self._n = 0
        self.grow(n)

    def grow(self, n: int) -> None:
        """Extend the domain to ``[0, n)``."""
        total = self._cumulative[-1] if self._cumulative else 0.0
        for rank in range(self._n + 1, n + 1):
            total += 1.0 / (rank ** self._theta)
            self._cumulative.append(total)
        self._n = n

    def next(self) -> int:
        import bisect

        point = self._rng.random() * self._cumulative[-1]
        return bisect.bisect_left(self._cumulative, point)

    @property
    def n(self) -> int:
        return self._n


@dataclass
class YCSBWorkload:
    """One YCSB core workload over ``record_count`` preloaded records.

    ``operations()`` yields the load phase (inserts) followed by
    ``operation_count`` transactions.  Scans are expressed as primary-key
    RANGELOOKUPs via a reserved ``_key`` attribute each document carries,
    so they run through the same public query API as everything else.
    """

    workload: str = "A"
    record_count: int = 1000
    operation_count: int = 3000
    field_length: int = 64
    seed: int = 0
    #: Filled during iteration: how many of each op type were produced.
    produced: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workload not in CORE_WORKLOADS:
            raise ValueError(
                f"unknown YCSB workload {self.workload!r}; "
                f"choose from {sorted(CORE_WORKLOADS)}")

    @staticmethod
    def key_of(item: int) -> str:
        return f"user{item:012d}"

    def _document(self, rng: random.Random, key: str) -> Document:
        return {
            "_key": key,  # mirrors the primary key so scans can range on it
            "field0": "".join(rng.choices("abcdefghij",
                                          k=self.field_length)),
        }

    def operations(self) -> Iterator[Operation]:
        rng = random.Random(self.seed ^ 0x5CB)
        mix = CORE_WORKLOADS[self.workload]
        inserted = self.record_count
        zipf = ZipfianGenerator(inserted, rng=random.Random(self.seed))

        def count(name: str) -> None:
            self.produced[name] = self.produced.get(name, 0) + 1

        for item in range(self.record_count):
            key = self.key_of(item)
            count("load")
            yield Put(key, self._document(rng, key))

        cuts = []
        acc = 0.0
        for name, fraction in mix.items():
            acc += fraction
            cuts.append((acc, name))
        for _ in range(self.operation_count):
            roll = rng.random()
            op_name = next(name for cut, name in cuts if roll <= cut)
            if op_name == "read":
                count("read")
                yield Get(self.key_of(self._choose(rng, zipf, inserted)))
            elif op_name == "update":
                count("update")
                key = self.key_of(self._choose(rng, zipf, inserted))
                yield Put(key, self._document(rng, key), is_update=True)
            elif op_name == "insert":
                count("insert")
                key = self.key_of(inserted)
                inserted += 1
                zipf.grow(inserted)
                yield Put(key, self._document(rng, key))
            elif op_name == "scan":
                count("scan")
                start = self._choose(rng, zipf, inserted)
                length = rng.randint(1, _MAX_SCAN_LENGTH)
                yield RangeLookup("_key", self.key_of(start),
                                  self.key_of(start + length), None)
            else:  # read-modify-write
                count("rmw")
                key = self.key_of(self._choose(rng, zipf, inserted))
                yield Get(key)
                yield Put(key, self._document(rng, key), is_update=True)

    def _choose(self, rng: random.Random, zipf: ZipfianGenerator,
                inserted: int) -> int:
        """Item choice: zipfian over all items; workload D prefers the
        most recent inserts ("latest" distribution)."""
        if self.workload == "D":
            # Latest: zipfian over recency rank.
            return max(0, inserted - 1 - zipf.next())
        return min(zipf.next(), inserted - 1)
