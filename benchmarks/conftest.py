"""Session fixtures for the benchmark suite.

``static_db`` memoizes one fully built Static-workload database per index
variant, shared across benchmark modules — the build phase is itself the
measured subject of Figures 8 and 9, which use their own fresh builds.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from harness import build_static  # noqa: E402


class _StaticCache:
    """Builds Static databases on demand and owns their lifetime."""

    def __init__(self) -> None:
        self._built = {}
        self.build_seconds = {}

    def get(self, kind):
        if kind not in self._built:
            import time

            started = time.perf_counter()
            self._built[kind] = build_static(kind)
            self.build_seconds[kind] = time.perf_counter() - started
        return self._built[kind]

    def close(self) -> None:
        for db, _workload in self._built.values():
            db.close()


@pytest.fixture(scope="session")
def static_cache():
    cache = _StaticCache()
    yield cache
    cache.close()
