"""Workload analysis: derive a Figure-2 profile from an operation trace.

The paper's selection strategy (Figure 2) takes workload facts as inputs —
operation ratios, typical top-K, attribute time-correlation.  In practice
nobody knows those numbers; they are measured from a trace.  This module
closes that loop::

    profile = analyze_trace(operations, attribute="UserID")
    recommendation = IndexSelector().recommend(profile)

Time-correlation is estimated the way the paper defines it ("its value for
a record is highly correlated with the record's insertion timestamp") —
the rank correlation between insertion order and attribute order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.records import attribute_of
from repro.core.selector import WorkloadProfile
from repro.lsm.zonemap import encode_attribute
from repro.workloads.ops import Delete, Get, Lookup, Operation, Put, RangeLookup

#: |Spearman rho| above which an attribute counts as time-correlated.
TIME_CORRELATION_THRESHOLD = 0.8


@dataclass(frozen=True)
class TraceSummary:
    """Raw counts extracted from a trace (before profile normalisation)."""

    puts: int
    gets: int
    deletes: int
    lookups: int
    range_lookups: int
    top_ks: tuple[int, ...]
    unlimited_top_k: int
    time_correlation: float | None

    @property
    def total(self) -> int:
        return (self.puts + self.gets + self.deletes + self.lookups
                + self.range_lookups)


def spearman_rank_correlation(values: list) -> float:
    """Spearman's rho between position and value rank.

    1.0 for a monotonically increasing attribute (perfectly
    time-correlated, like the paper's CreationTime or tweet-id), ~0 for a
    shuffled one (like UserID).
    """
    n = len(values)
    if n < 2:
        return 0.0
    order = sorted(range(n), key=lambda i: values[i])
    ranks = [0.0] * n
    index = 0
    while index < n:
        # Average ranks across ties so duplicates do not bias rho.
        start = index
        while index + 1 < n and \
                values[order[index + 1]] == values[order[start]]:
            index += 1
        average = (start + index) / 2.0
        for position in range(start, index + 1):
            ranks[order[position]] = average
        index += 1
    mean = (n - 1) / 2.0
    covariance = sum((i - mean) * (ranks[i] - mean) for i in range(n))
    variance = sum((i - mean) ** 2 for i in range(n))
    rank_variance = sum((r - mean) ** 2 for r in ranks)
    if variance == 0 or rank_variance == 0:
        return 0.0
    return covariance / (variance * rank_variance) ** 0.5


def summarize_trace(operations: Iterable[Operation],
                    attribute: str) -> TraceSummary:
    """One pass over a trace, collecting everything Figure 2 needs."""
    puts = gets = deletes = lookups = range_lookups = unlimited = 0
    top_ks: list[int] = []
    inserted_values: list[bytes] = []
    for operation in operations:
        if isinstance(operation, Put):
            puts += 1
            value = attribute_of(operation.document, attribute)
            if value is not None and not operation.is_update:
                inserted_values.append(encode_attribute(value))
        elif isinstance(operation, Get):
            gets += 1
        elif isinstance(operation, Delete):
            deletes += 1
        elif isinstance(operation, Lookup):
            if operation.attribute == attribute:
                lookups += 1
                if operation.k is None:
                    unlimited += 1
                else:
                    top_ks.append(operation.k)
        elif isinstance(operation, RangeLookup):
            if operation.attribute == attribute:
                range_lookups += 1
                if operation.k is None:
                    unlimited += 1
                else:
                    top_ks.append(operation.k)
    correlation = None
    if len(inserted_values) >= 2:
        correlation = spearman_rank_correlation(inserted_values)
    return TraceSummary(puts, gets, deletes, lookups, range_lookups,
                        tuple(top_ks), unlimited, correlation)


def analyze_trace(operations: Iterable[Operation], attribute: str,
                  space_constrained: bool = False) -> WorkloadProfile:
    """Build the :class:`WorkloadProfile` a trace implies for ``attribute``.

    Deletes count as writes (they cost index maintenance like PUTs).  The
    typical top-K is the median of observed Ks, or ``None`` when the
    majority of secondary queries ran unlimited.
    """
    summary = summarize_trace(operations, attribute)
    total = summary.total
    if total == 0:
        raise ValueError("empty trace")
    limited = len(summary.top_ks)
    if summary.unlimited_top_k > limited:
        typical_top_k = None
    elif limited:
        typical_top_k = sorted(summary.top_ks)[limited // 2]
    else:
        typical_top_k = 10  # no secondary queries observed: neutral default
    return WorkloadProfile(
        put_fraction=(summary.puts + summary.deletes) / total,
        get_fraction=summary.gets / total,
        lookup_fraction=summary.lookups / total,
        range_lookup_fraction=summary.range_lookups / total,
        typical_top_k=typical_top_k,
        time_correlated=(summary.time_correlation is not None
                         and abs(summary.time_correlation)
                         >= TIME_CORRELATION_THRESHOLD),
        space_constrained=space_constrained,
    )
