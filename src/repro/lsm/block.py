"""SSTable data blocks: prefix-compressed sorted runs of entries.

The format is LevelDB's.  Each entry stores the length of the prefix it
shares with the previous key, the remaining key bytes, and the value::

    shared (varint) | non_shared (varint) | value_len (varint)
    key_delta (non_shared bytes) | value (value_len bytes)

Every ``restart_interval`` entries the full key is written and its offset is
appended to the *restart array* at the block's tail, enabling binary search::

    restart[0] .. restart[n-1] (uint32 LE each) | num_restarts (uint32 LE)

Keys are encoded internal keys; ordering uses the internal-key comparator
(user key ascending, sequence number descending).
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.lsm.errors import CorruptionError
from repro.lsm.keys import (
    decode_varint,
    encode_varint,
    internal_sort_key,
)

_U32 = struct.Struct("<I")
DEFAULT_RESTART_INTERVAL = 16


class BlockBuilder:
    """Accumulates sorted ``(internal_key, value)`` pairs into a block."""

    def __init__(self, restart_interval: int = DEFAULT_RESTART_INTERVAL) -> None:
        if restart_interval < 1:
            raise ValueError("restart_interval must be >= 1")
        self.restart_interval = restart_interval
        self._buffer = bytearray()
        self._restarts: list[int] = [0]
        self._counter = 0
        self._last_key = b""
        self._num_entries = 0

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def is_empty(self) -> bool:
        return self._num_entries == 0

    def current_size_estimate(self) -> int:
        return len(self._buffer) + 4 * len(self._restarts) + 4

    def add(self, key: bytes, value: bytes) -> None:
        """Append an entry.  Keys must arrive in strictly increasing order."""
        if self._num_entries and internal_sort_key(key) <= internal_sort_key(self._last_key):
            raise ValueError("block keys must be added in increasing order")
        if self._counter < self.restart_interval:
            shared = _shared_prefix_length(self._last_key, key)
        else:
            shared = 0
            self._restarts.append(len(self._buffer))
            self._counter = 0
        non_shared = len(key) - shared
        self._buffer += encode_varint(shared)
        self._buffer += encode_varint(non_shared)
        self._buffer += encode_varint(len(value))
        self._buffer += key[shared:]
        self._buffer += value
        self._last_key = key
        self._counter += 1
        self._num_entries += 1

    def finish(self) -> bytes:
        out = bytes(self._buffer)
        tail = bytearray()
        for restart in self._restarts:
            tail += _U32.pack(restart)
        tail += _U32.pack(len(self._restarts))
        return out + bytes(tail)

    def reset(self) -> None:
        self._buffer.clear()
        self._restarts = [0]
        self._counter = 0
        self._last_key = b""
        self._num_entries = 0


def _shared_prefix_length(a: bytes, b: bytes) -> int:
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


class Block:
    """Read-side view of a finished block."""

    def __init__(self, data: bytes) -> None:
        if len(data) < 4:
            raise CorruptionError("block too small for restart count")
        self._data = data
        num_restarts = _U32.unpack_from(data, len(data) - 4)[0]
        restart_end = len(data) - 4
        restart_start = restart_end - 4 * num_restarts
        if restart_start < 0:
            raise CorruptionError("restart array overflows block")
        self._restarts = [
            _U32.unpack_from(data, restart_start + 4 * i)[0]
            for i in range(num_restarts)
        ]
        self._entries_end = restart_start

    def _decode_entry(self, offset: int,
                      previous_key: bytes) -> tuple[bytes, bytes, int]:
        """Decode one entry; returns ``(key, value, next_offset)``."""
        try:
            shared, pos = decode_varint(self._data, offset)
            non_shared, pos = decode_varint(self._data, pos)
            value_len, pos = decode_varint(self._data, pos)
        except ValueError as exc:
            raise CorruptionError(f"bad block entry header: {exc}") from exc
        if shared > len(previous_key):
            raise CorruptionError("block entry shares more than previous key")
        key_end = pos + non_shared
        value_end = key_end + value_len
        if value_end > self._entries_end:
            raise CorruptionError("block entry overflows entry region")
        key = previous_key[:shared] + self._data[pos:key_end]
        value = bytes(self._data[key_end:value_end])
        return key, value, value_end

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        offset = 0
        key = b""
        while offset < self._entries_end:
            key, value, offset = self._decode_entry(offset, key)
            yield key, value

    def _restart_key(self, index: int) -> bytes:
        key, _value, _next = self._decode_entry(self._restarts[index], b"")
        return key

    def seek(self, target: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate entries with internal key >= ``target``.

        Binary-searches the restart array for the last restart whose key is
        < ``target``, then scans forward, exactly like LevelDB's block
        iterator.
        """
        target_sort = internal_sort_key(target)
        lo, hi = 0, len(self._restarts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if internal_sort_key(self._restart_key(mid)) < target_sort:
                lo = mid
            else:
                hi = mid - 1
        offset = self._restarts[lo]
        key = b""
        while offset < self._entries_end:
            key, value, offset = self._decode_entry(offset, key)
            if internal_sort_key(key) >= target_sort:
                yield key, value
                break
        while offset < self._entries_end:
            key, value, offset = self._decode_entry(offset, key)
            yield key, value
