"""Engine micro-benchmark: put/get/scan/secondary-lookup throughput.

Unlike the ``bench_fig*`` modules (which reproduce the paper's figures),
this harness tracks the *engine's* performance trajectory across PRs.  It
is a plain script, not a pytest module::

    PYTHONPATH=src python benchmarks/bench_engine_micro.py \
        [--scale full|ci] [--baseline FILE] [--output BENCH_engine.json] \
        [--check BENCH_engine.json]

It measures, on an in-memory VFS at the benchmark geometry:

* ``put_ops_per_sec``      — raw ``DB.put`` including inline flush/compaction;
* ``get_ops_per_sec``      — point gets over a built, compacted tree;
* ``scan_entries_per_sec`` — full-range scan throughput;
* ``secondary_lookup_ops_per_sec`` — Lazy-index LOOKUPs through
  :class:`~repro.core.database.SecondaryIndexedDB`;
* allocation pressure      — tracemalloc peak KiB over a fixed op batch.

Wall-clock throughput is machine-dependent, so every run also measures a
fixed pure-Python *calibration loop* and reports throughput normalized by
it.  ``--check`` compares a fresh run's normalized numbers against a
committed ``BENCH_engine.json`` and exits non-zero when any throughput
metric regressed by more than ``REGRESSION_TOLERANCE`` — the CI smoke gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core.base import IndexKind  # noqa: E402
from repro.core.database import SecondaryIndexedDB  # noqa: E402
from repro.lsm.db import DB  # noqa: E402
from repro.lsm.options import Options  # noqa: E402

SCHEMA = 1

#: CI fails when a throughput metric drops below this fraction of the
#: committed normalized baseline (the ">30% regression" gate).
REGRESSION_TOLERANCE = 0.70

#: Every timed phase (and the calibration loop) runs this many times and
#: the *best* time wins — the minimum is the run least disturbed by other
#: tenants of the machine, which matters a lot on shared CI runners.
REPEATS = 3

#: Same spirit as ``harness.BENCH_OPTIONS``: small geometry so flushes and
#: compactions actually happen at micro-benchmark op counts.
ENGINE_OPTIONS = dict(
    block_size=2048,
    sstable_target_size=16 * 1024,
    memtable_budget=16 * 1024,
    l1_target_size=64 * 1024,
    compression="none",
)

SCALES = {
    # op counts: (puts, gets, scans, secondary lookups)
    "full": dict(puts=12000, gets=4000, scans=15, lookups=1500,
                 lookup_tweets=3000),
    "ci": dict(puts=2500, gets=800, scans=4, lookups=300,
               lookup_tweets=800),
}

THROUGHPUT_METRICS = (
    "put_ops_per_sec",
    "get_ops_per_sec",
    "scan_entries_per_sec",
    "secondary_lookup_ops_per_sec",
)


def _key(i: int) -> bytes:
    return b"user%06d" % (i * 2654435761 % 1000003)


def _value(i: int) -> bytes:
    return (b"{\"UserID\": \"u%04d\", \"body\": \"%s\"}"
            % (i % 97, b"x" * (40 + i % 60)))


def calibrate() -> float:
    """Fixed pure-Python workload; returns its ops/sec on this machine.

    Sorting byte strings exercises the same interpreter machinery (bytes
    compares, list handling, allocation) as the engine's hot paths, so the
    ratio engine-throughput / calibration-throughput is comparable across
    hosts of different speeds.
    """
    def one_round() -> float:
        data = [b"%06d" % ((i * 7919) % 100000) for i in range(2000)]
        ops = 0
        started = time.perf_counter()
        while ops < 60_000:
            data.sort(key=lambda item: (item, 1))
            data.reverse()
            ops += len(data)
        return ops / (time.perf_counter() - started)

    return max(one_round() for _ in range(REPEATS))


def _timed(fn) -> float:
    """Best-of-``REPEATS`` wall time of ``fn`` (must be re-runnable)."""
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _peak_alloc_kib(fn) -> float:
    tracemalloc.start()
    try:
        fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1024


def run_benchmark(scale: str) -> dict:
    cfg = SCALES[scale]
    options = Options(**ENGINE_OPTIONS)
    metrics: dict[str, float] = {}

    # -- put path (includes inline flush + compaction) ----------------------
    # A put run is not repeatable on the same tree, so each repeat builds a
    # fresh database; the last build feeds the read phases below.
    n_puts = cfg["puts"]
    elapsed = float("inf")
    db = None
    for _ in range(REPEATS):
        if db is not None:
            db.close()
        db = DB.open_memory(options=options)
        put = db.put
        started = time.perf_counter()
        for i in range(n_puts):
            put(_key(i), _value(i))
        elapsed = min(elapsed, time.perf_counter() - started)
    metrics["put_ops_per_sec"] = n_puts / elapsed

    # -- point gets over the built tree -------------------------------------
    db.flush()
    get_keys = [_key(i * 3 % n_puts) for i in range(cfg["gets"])]

    def do_gets():
        get = db.get
        for key in get_keys:
            get(key)

    elapsed = _timed(do_gets)
    metrics["get_ops_per_sec"] = len(get_keys) / elapsed
    metrics["get_peak_alloc_kib"] = _peak_alloc_kib(do_gets)

    # -- full scans ----------------------------------------------------------
    def do_scans() -> int:
        seen = 0
        for _ in range(cfg["scans"]):
            for _key_, _value_ in db.scan():
                seen += 1
        return seen

    total_entries = do_scans()  # warm + count; timing is best-of below
    elapsed = _timed(do_scans)
    metrics["scan_entries_per_sec"] = total_entries / elapsed
    metrics["scan_peak_alloc_kib"] = _peak_alloc_kib(do_scans)
    db.close()

    # -- secondary lookups (Lazy index, the paper's overall pick) ------------
    sdb = SecondaryIndexedDB.open_memory(
        indexes={"UserID": IndexKind.LAZY}, options=Options(**ENGINE_OPTIONS))
    for i in range(cfg["lookup_tweets"]):
        sdb.put(b"t%06d" % i, {"UserID": "u%03d" % (i % 53), "n": i})
    sdb.flush()
    values = ["u%03d" % (i % 53) for i in range(cfg["lookups"])]

    def do_lookups():
        lookup = sdb.lookup
        for value in values:
            lookup("UserID", value, k=5)

    elapsed = _timed(do_lookups)
    metrics["secondary_lookup_ops_per_sec"] = len(values) / elapsed
    sdb.close()

    calibration = calibrate()
    return {
        "schema": SCHEMA,
        "harness": "benchmarks/bench_engine_micro.py",
        "scale": scale,
        "python": sys.version.split()[0],
        "calibration_ops_per_sec": round(calibration, 1),
        "metrics": {name: round(value, 2)
                    for name, value in metrics.items()},
        "normalized": {
            name: round(metrics[name] / calibration, 6)
            for name in THROUGHPUT_METRICS},
    }


def attach_baseline(report: dict, baseline: dict) -> None:
    """Embed ``baseline``'s numbers and the speedup ratios into ``report``."""
    report["baseline"] = {
        "scale": baseline.get("scale"),
        "calibration_ops_per_sec": baseline.get("calibration_ops_per_sec"),
        "metrics": baseline.get("metrics", {}),
        "normalized": baseline.get("normalized", {}),
    }
    speedups = {}
    for name in THROUGHPUT_METRICS:
        ours = report["normalized"].get(name)
        theirs = baseline.get("normalized", {}).get(name)
        if ours and theirs:
            speedups[name] = round(ours / theirs, 3)
    report["speedup_vs_baseline"] = speedups


def check_against(report: dict, committed: dict) -> int:
    """CI gate: fail when normalized throughput regressed past tolerance.

    Tree shape differs between scales (a ``ci``-scale tree is smaller and
    less compacted), so the comparison is only like-for-like against the
    committed numbers for the *same* scale: the committed report's own
    ``normalized`` when scales match, else its ``<scale>_normalized``
    snapshot (full-scale ``--output`` runs record one per other scale).
    """
    if committed.get("scale") == report["scale"]:
        committed_normalized = committed.get("normalized", {})
    else:
        committed_normalized = committed.get(
            f"{report['scale']}_normalized", {})
        if not committed_normalized:
            print(f"no {report['scale']}-scale baseline in committed report; "
                  "nothing to gate against")
            return 0
    failures = []
    for name in THROUGHPUT_METRICS:
        ours = report["normalized"].get(name)
        theirs = committed_normalized.get(name)
        if not ours or not theirs:
            continue
        ratio = ours / theirs
        status = "ok" if ratio >= REGRESSION_TOLERANCE else "REGRESSED"
        print(f"  {name:32s} {ratio:6.2f}x of committed baseline  [{status}]")
        if ratio < REGRESSION_TOLERANCE:
            failures.append(name)
    if failures:
        print(f"FAIL: {', '.join(failures)} regressed more than "
              f"{(1 - REGRESSION_TOLERANCE):.0%} vs committed baseline")
        return 1
    print("benchmark smoke: no regression beyond tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="full")
    parser.add_argument("--baseline", help="earlier JSON report to embed as "
                        "the before numbers")
    parser.add_argument("--output", help="write the JSON report here")
    parser.add_argument("--check", help="committed BENCH_engine.json to "
                        "gate against (CI mode)")
    args = parser.parse_args(argv)

    report = run_benchmark(args.scale)
    if args.output:
        # A committed report also carries normalized snapshots of the other
        # scales, so the CI gate (which runs at reduced scale) can compare
        # like-for-like instead of across tree shapes.
        for other in sorted(SCALES):
            if other != args.scale:
                report[f"{other}_normalized"] = \
                    run_benchmark(other)["normalized"]
    if args.baseline:
        with open(args.baseline) as handle:
            attach_baseline(report, json.load(handle))

    print(json.dumps({k: report[k] for k in
                      ("scale", "calibration_ops_per_sec", "metrics")},
                     indent=2))
    if "speedup_vs_baseline" in report:
        print("speedup vs baseline:",
              json.dumps(report["speedup_vs_baseline"], indent=2))

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        with open(args.check) as handle:
            return check_against(report, json.load(handle))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
