"""A Twitter-style timeline service — the paper's motivating application.

"If a tweet has attributes such as tweet_id, user_id and text, then it
would be useful to be able to return all (or the most recent) tweets of a
user."  Social feeds are read-mostly and sensitive to small top-K, which
is exactly the regime where the Lazy stand-alone index wins (Figure 2 /
Figure 10a): it can stop after one LSM level once K results are found.

This example ingests a synthetic tweet stream, serves "latest K tweets of
user X" timeline queries, and prints the I/O metering that motivates the
index choice.

Run with::

    python examples/twitter_timeline.py
"""

from repro import IndexKind, IndexSelector, SecondaryIndexedDB, WorkloadProfile
from repro.lsm.options import Options
from repro.workloads.tweets import SeedProfile, TweetGenerator


def main() -> None:
    # 1. Ask the Figure 2 selector which index fits a feed workload:
    #    read-mostly, small top-K, attribute (user_id) not time-correlated.
    profile = WorkloadProfile(
        put_fraction=0.25, get_fraction=0.55, lookup_fraction=0.20,
        typical_top_k=10, time_correlated=False)
    recommendation = IndexSelector().recommend(profile)
    print(f"selector recommends: {recommendation.kind.value}")
    for reason in recommendation.reasons:
        print(f"  because {reason}")
    assert recommendation.kind == IndexKind.LAZY

    # 2. Build the store with that index.  Scaled-down LSM geometry so the
    #    tree develops several levels within this small demo.
    options = Options(block_size=2048, sstable_target_size=16 * 1024,
                      memtable_budget=16 * 1024, l1_target_size=64 * 1024)
    db = SecondaryIndexedDB.open_memory(
        indexes={"UserID": recommendation.kind}, options=options)

    # 3. Ingest a synthetic firehose (Zipf user activity, like Figure 7).
    generator = TweetGenerator(SeedProfile(num_users=300), seed=2018)
    print("\ningesting 8000 tweets...")
    for key, doc in generator.tweets(8000):
        db.put(key, doc)
    print(f"LSM levels populated: {db.primary.num_nonempty_levels()}")

    # 4. Serve timelines.  u00000 is the loudest account; the tail user
    #    barely tweets.
    for user in ("u00000", "u00042", "u00250"):
        timeline = db.lookup("UserID", user, k=5)
        print(f"\n@{user} — latest {len(timeline)} tweets:")
        for result in timeline:
            body = result.document["Body"][:40]
            print(f"  [{result.key}] {body}...")

    # 5. The metering that justifies the choice: a K=5 timeline touches a
    #    handful of blocks, versus a full scan of the whole store.
    index = db.indexes["UserID"]
    stats_before = index.index_db.vfs.stats.read_blocks
    gets_before = db.checker.validation_gets
    db.lookup("UserID", "u00000", k=5)
    print(f"\none K=5 timeline query cost: "
          f"{index.index_db.vfs.stats.read_blocks - stats_before} "
          f"index-table block reads + "
          f"{db.checker.validation_gets - gets_before} data-table GETs")
    print(f"(the store holds {db.total_size():,} bytes across "
          f"{sum(db.primary.level_file_counts())} primary SSTables)")
    db.close()


if __name__ == "__main__":
    main()
