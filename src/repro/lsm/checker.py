"""Offline integrity verification — a `db_verify`-style maintenance tool.

:func:`verify_integrity` audits a database the way LevelDB's paranoid mode
and ``ldb verify`` do, without mutating anything:

* **manifest vs filesystem** — every live table file exists, no live file
  is missing, sizes match the manifest;
* **orphan audit** — no stale engine files (dead tables, old WALs or
  manifests, a stranded ``CURRENT.tmp``) survive past recovery's cleanup;
* **per-table physical checks** — footer magic, CRC of every block;
* **per-table logical checks** — entries in internal-key order, entry
  counts and key bounds matching the manifest metadata, sequence numbers
  within the recorded range;
* **cross-table invariants** — levels >= 1 sorted and disjoint, level-0
  ordered newest-first;
* **embedded-index soundness** — every secondary attribute value stored in
  a block is accepted by that block's bloom filter and zone map (a filter
  that could reject a present value would silently lose query results).

Findings are returned as a list of human-readable problem strings; an
empty list means the database is sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lsm.bloom import bloom_may_contain
from repro.lsm.db import DB
from repro.lsm.errors import CorruptionError
from repro.lsm.keys import KIND_VALUE, internal_sort_key
from repro.lsm.manifest import table_file_name
from repro.lsm.vfs import Category
from repro.lsm.zonemap import encode_attribute


@dataclass
class IntegrityReport:
    """Outcome of one :func:`verify_integrity` run."""

    tables_checked: int = 0
    entries_checked: int = 0
    blocks_checked: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def problem(self, text: str) -> None:
        self.problems.append(text)


def verify_integrity(db: DB) -> IntegrityReport:
    """Audit every live table of ``db``; returns an :class:`IntegrityReport`."""
    report = IntegrityReport()
    version = db.versions.current
    _check_manifest_vs_files(db, report)
    _check_orphans(db, report)
    _check_level_invariants(db, report)
    for level, meta in version.all_files():
        _check_table(db, level, meta, report)
    return report


def _file_number(base: str) -> int | None:
    stem = base.split(".")[0]
    return int(stem) if stem.isdigit() else None


def _check_manifest_vs_files(db: DB, report: IntegrityReport) -> None:
    live = db.versions.live_file_numbers()
    on_disk = {}
    for name in db.vfs.list_dir(db.name + "/"):
        base = name.rsplit("/", 1)[-1]
        if base.endswith(".ldb"):
            number = _file_number(base)
            if number is not None:
                on_disk[number] = name
    for number in live:
        if number not in on_disk:
            report.problem(f"live table {number} missing from filesystem")
    for _level, meta in db.versions.current.all_files():
        name = table_file_name(db.name, meta.file_number)
        if db.vfs.exists(name):
            actual = db.vfs.file_size(name)
            if actual != meta.file_size:
                report.problem(
                    f"table {meta.file_number}: manifest size "
                    f"{meta.file_size} != file size {actual}")


def _check_orphans(db: DB, report: IntegrityReport) -> None:
    """Flag engine files that recovery should have cleaned up.

    Non-engine-shaped names (a user's stray notes, say) are outside the
    engine's purview and are ignored, matching recovery's skip-with-warning
    policy.
    """
    from repro.lsm.manifest import current_tmp_file_name

    live = db.versions.live_file_numbers()
    for name in db.vfs.list_dir(db.name + "/"):
        base = name.rsplit("/", 1)[-1]
        if name == current_tmp_file_name(db.name):
            report.problem("stranded CURRENT.tmp (interrupted install)")
        elif base.endswith(".ldb"):
            number = _file_number(base)
            if number is not None and number not in live:
                report.problem(f"orphaned table file {name}")
        elif base.endswith(".log"):
            number = _file_number(base)
            if number is not None and number != db._log_number:
                report.problem(f"orphaned log file {name}")
        elif base.startswith("MANIFEST-"):
            suffix = base.split("-", 1)[1]
            if db._manifest is not None and suffix.isdigit() and \
                    int(suffix) != db._manifest.number:
                report.problem(f"orphaned manifest file {name}")


def _check_level_invariants(db: DB, report: IntegrityReport) -> None:
    version = db.versions.current
    for level in range(1, db.options.max_levels):
        files = version.levels[level]
        for i in range(1, len(files)):
            if files[i - 1].largest_user_key >= files[i].smallest_user_key:
                report.problem(
                    f"level {level}: files {files[i - 1].file_number} and "
                    f"{files[i].file_number} overlap")
    level0 = version.levels[0]
    for i in range(1, len(level0)):
        if level0[i - 1].file_number < level0[i].file_number:
            report.problem("level 0 not ordered newest-file-first")


def _check_table(db: DB, level: int, meta, report: IntegrityReport) -> None:
    report.tables_checked += 1
    name = table_file_name(db.name, meta.file_number)
    if not db.vfs.exists(name):
        return  # already reported
    try:
        from repro.lsm.sstable import SSTable

        table = SSTable(db.options, db.vfs.open_random(name),
                        meta.file_number)
    except CorruptionError as exc:
        report.problem(f"table {meta.file_number}: unreadable ({exc})")
        return
    # Under on_corruption="quarantine" the open degrades corrupt meta
    # blocks instead of raising; the audit still reports them.
    for degraded in table.degraded_filters:
        report.problem(
            f"table {meta.file_number}: corrupt meta block {degraded!r}")

    entries = 0
    previous_key: bytes | None = None
    smallest = largest = None
    min_seq = max_seq = None
    extractor = db.options.attribute_extractor
    for block_index in range(table.num_data_blocks):
        report.blocks_checked += 1
        try:
            # One raw read with verify_crc=True: the audit never trusts the
            # paranoid_checks setting (which gates the engine's own reads)
            # nor any cache — every byte is re-read and re-checksummed.
            from repro.lsm.block import Block
            from repro.lsm.sstable import _read_physical_block

            payload = _read_physical_block(
                table.file, table._index_entries[block_index][1],
                Category.OTHER, verify_crc=True, options=db.options)
            block = Block(payload)
        except CorruptionError as exc:
            report.problem(
                f"table {meta.file_number} block {block_index}: {exc}")
            continue
        for ikey_bytes, value in block:
            entries += 1
            if previous_key is not None and \
                    internal_sort_key(ikey_bytes) <= \
                    internal_sort_key(previous_key):
                report.problem(
                    f"table {meta.file_number} block {block_index}: "
                    f"keys out of order")
            previous_key = ikey_bytes
            if smallest is None:
                smallest = ikey_bytes
            largest = ikey_bytes
            from repro.lsm.keys import unpack_internal_key

            ikey = unpack_internal_key(ikey_bytes)
            min_seq = ikey.seq if min_seq is None else min(min_seq, ikey.seq)
            max_seq = ikey.seq if max_seq is None else max(max_seq, ikey.seq)
            _check_embedded_soundness(
                table, meta, block_index, ikey, value, extractor, report)
    report.entries_checked += entries

    if entries != meta.num_entries:
        report.problem(
            f"table {meta.file_number}: manifest records "
            f"{meta.num_entries} entries, found {entries}")
    if smallest is not None and smallest != meta.smallest:
        report.problem(
            f"table {meta.file_number}: smallest key mismatch")
    if largest is not None and largest != meta.largest:
        report.problem(f"table {meta.file_number}: largest key mismatch")
    if min_seq is not None and \
            not (meta.min_seq <= min_seq and max_seq <= meta.max_seq):
        report.problem(
            f"table {meta.file_number}: sequence range "
            f"[{min_seq}, {max_seq}] outside manifest "
            f"[{meta.min_seq}, {meta.max_seq}]")
    table.file.close()


def _check_embedded_soundness(table, meta, block_index, ikey, value,
                              extractor, report: IntegrityReport) -> None:
    """Present attribute values must pass their block's bloom + zone map."""
    if ikey.kind != KIND_VALUE or not table.secondary_filters:
        return
    attrs = extractor(value)
    for attribute, blooms in table.secondary_filters.items():
        attr_value = attrs.get(attribute)
        if attr_value is None:
            continue
        encoded = encode_attribute(attr_value)
        if block_index < len(blooms) and blooms[block_index] and \
                not bloom_may_contain(blooms[block_index], encoded):
            report.problem(
                f"table {meta.file_number} block {block_index}: bloom "
                f"filter for {attribute!r} rejects a present value")
        zonemaps = table.secondary_zonemaps.get(attribute, [])
        if block_index < len(zonemaps) and \
                not zonemaps[block_index].contains(encoded):
            report.problem(
                f"table {meta.file_number} block {block_index}: zone map "
                f"for {attribute!r} excludes a present value")
        file_zone = meta.secondary_zonemaps.get(attribute)
        if file_zone is not None and not file_zone.contains(encoded):
            report.problem(
                f"table {meta.file_number}: file-level zone map for "
                f"{attribute!r} excludes a present value")
