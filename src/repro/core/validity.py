"""Validity checks: filtering stale index hits against the data table.

Updates leave stale information behind in every index variant (Section 4:
"there could be invalid keys in the postings list ... caused by updates on
the data table"), so each candidate must be validated before it becomes a
result:

* Stand-alone indexes issue a GET on the data table and re-check the
  attribute value (:meth:`ValidityChecker.fetch_valid`).
* The Embedded index found the *record version itself* in a primary-table
  block, so it only needs to know whether a **newer version** of the key
  exists — the paper's GetLite (:meth:`ValidityChecker.is_newest_version`),
  which resolves almost always from in-memory structures (MemTable, file
  ranges, index blocks, primary bloom filters) and reads a block only to
  confirm a bloom positive, keeping the check correct in the face of false
  positives.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.records import Document, attribute_of, decode_document
from repro.lsm.db import DB
from repro.lsm.keys import MAX_SEQUENCE
from repro.lsm.vfs import Category


class ValidityChecker:
    """Candidate validation against one primary table."""

    def __init__(self, primary: DB) -> None:
        self.primary = primary
        #: Number of GETs issued on the data table for validation — the
        #: "K GET queries on data table" term of the paper's Table 5.
        self.validation_gets = 0
        #: GetLite probes answered purely in memory vs with a confirm read.
        self.getlite_memory_only = 0
        self.getlite_confirm_reads = 0

    def fetch_valid(self, key: bytes,
                    predicate: Callable[[Document], bool]
                    ) -> tuple[Document, int] | None:
        """GET ``key``; return ``(document, seq)`` if live and matching.

        Used by the Eager, Lazy and Composite LOOKUP/RANGELOOKUP paths:
        "for each entry k in the list of primary keys, we issue a GET(k) on
        data table ... we make sure val(A_i) = a".
        """
        self.validation_gets += 1
        found = self.primary.get_with_seq(key)
        if found is None:
            return None
        value, seq = found
        document = decode_document(value)
        if not predicate(document):
            return None
        return document, seq

    def is_newest_version(self, key: bytes, seq: int, level: int) -> bool:
        """GetLite: is the version of ``key`` at ``seq`` still the newest?

        ``level`` is the level in which the version was found (the paper's
        ``currentLevel``); only strictly higher components can hold newer
        versions of the key, so the probe is restricted to the MemTable and
        levels ``0 .. level-1``.

        The in-memory probe (:meth:`repro.lsm.db.DB.key_maybe_in_levels`)
        decides the common case for free; a positive — which may be a bloom
        false positive — is confirmed with a real read so the check never
        wrongly discards a live record.
        """
        if not self.primary.key_maybe_in_levels(key, level):
            self.getlite_memory_only += 1
            return True
        self.getlite_confirm_reads += 1
        newest = self._newest_seq_above(key, level)
        return newest is None or newest <= seq

    def _newest_seq_above(self, key: bytes, below_level: int) -> int | None:
        """Newest sequence of ``key`` among MemTable and levels < ``below_level``."""
        entry = self.primary.memtable.get(key)
        if entry is not None:
            return entry.seq
        version = self.primary.versions.current
        best: int | None = None
        for level in range(min(below_level, self.primary.options.max_levels)):
            for meta in version.files_containing_key(level, key):
                table = self.primary.table_cache.get(meta.file_number)
                for ikey, _value in table.versions(key, MAX_SEQUENCE,
                                                   Category.DATA):
                    if best is None or ikey.seq > best:
                        best = ikey.seq
                    break  # newest in this table is enough
            if best is not None and level >= 1:
                break  # deeper levels are older still
        return best


def attribute_equals(attribute: str, value: Any) -> Callable[[Document], bool]:
    """Predicate: the live document still carries ``attribute == value``."""
    def check(document: Document) -> bool:
        return attribute_of(document, attribute) == value
    return check


def attribute_in_range(attribute: str, low: Any, high: Any,
                       encode: Callable[[Any], bytes]
                       ) -> Callable[[Document], bool]:
    """Predicate: ``low <= document[attribute] <= high`` in encoded order."""
    low_encoded = encode(low)
    high_encoded = encode(high)

    def check(document: Document) -> bool:
        attr_value = attribute_of(document, attribute)
        if attr_value is None:
            return False
        encoded = encode(attr_value)
        return low_encoded <= encoded <= high_encoded
    return check
