"""Iterators: k-way merging of sorted entry streams and version resolution.

Every storage component (MemTable, each SSTable, each level) exposes a
stream of ``(InternalKey, value)`` pairs in internal-key order.  This module
merges such streams and collapses raw version streams into the user-visible
view: newest visible version wins, tombstones hide keys, and merge operands
are folded through the merge operator — the read-side half of the
RocksDB-style merge mechanism the Lazy index builds on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator

from repro.lsm.errors import InvalidArgumentError
from repro.lsm.keys import (
    KIND_MERGE,
    KIND_VALUE,
    InternalKey,
    MAX_SEQUENCE,
)

EntryStream = Iterator[tuple[InternalKey, bytes]]
MergeFn = Callable[[bytes, list[bytes]], bytes]


def merge_streams(streams: list[EntryStream]) -> EntryStream:
    """Merge sorted entry streams into one sorted stream (stable heap merge).

    Stability: at equal sort keys the stream that appears first in
    ``streams`` wins (its index is the tie-breaker in the heap tuple), so
    callers list components newest-first, as :meth:`repro.lsm.db.DB.scan`
    does.

    The loop keeps one heap entry per live stream and advances the winner
    with ``heapreplace`` — one sift per yielded entry, instead of the
    pop-then-push pair (two sifts) of a naive heap merge, and no
    re-created generator frames per entry.
    """
    iterators = [iter(stream) for stream in streams]
    if len(iterators) == 1:
        # Single component (common for small trees): no heap needed at all.
        yield from iterators[0]
        return
    heap: list[tuple[tuple[bytes, int], int, InternalKey, bytes, Any]] = []
    for index, iterator in enumerate(iterators):
        advance = iterator.__next__
        try:
            ikey, value = advance()
        except StopIteration:
            continue
        heap.append((ikey.sort_key(), index, ikey, value, advance))
    heapq.heapify(heap)
    heappop, heapreplace = heapq.heappop, heapq.heapreplace
    while heap:
        _sort_key, index, ikey, value, advance = heap[0]
        yield ikey, value
        try:
            next_ikey, next_value = advance()
        except StopIteration:
            heappop(heap)
        else:
            heapreplace(heap, (next_ikey.sort_key(), index, next_ikey,
                               next_value, advance))


def resolve_versions(
    entries: EntryStream,
    max_seq: int = MAX_SEQUENCE,
    merge_operator: MergeFn | None = None,
) -> Iterator[tuple[bytes, bytes, int]]:
    """Collapse a raw version stream to user-visible ``(key, value, seq)``.

    ``entries`` must be in internal-key order (user key ascending, seq
    descending) and may interleave several versions per user key.  Entries
    with ``seq > max_seq`` are invisible (snapshot reads).  For each user
    key the newest visible version decides:

    * ``KIND_VALUE`` — yielded as-is,
    * ``KIND_DELETE`` — the key is hidden,
    * ``KIND_MERGE`` — operands are accumulated (newest first) down to the
      first VALUE/DELETE base or the end of the key's versions, then folded
      oldest-first through ``merge_operator``.
    """
    current_key: bytes | None = None
    operands: list[bytes] = []  # newest-first merge operands
    operand_seq = 0

    def fold(user_key: bytes, base: bytes | None) -> bytes:
        if merge_operator is None:
            raise InvalidArgumentError(
                "merge entries present but no merge_operator configured")
        oldest_first = list(reversed(operands))
        if base is not None:
            oldest_first.insert(0, base)
        return merge_operator(user_key, oldest_first)

    done_with_key = False
    for ikey, value in entries:
        if ikey.user_key != current_key:
            if operands and current_key is not None:
                # Merge chain ran off the end of the previous key: no base.
                yield current_key, fold(current_key, None), operand_seq
            current_key = ikey.user_key
            operands = []
            done_with_key = False
        if done_with_key or ikey.seq > max_seq:
            continue
        if ikey.kind == KIND_MERGE:
            if not operands:
                operand_seq = ikey.seq
            operands.append(value)
            continue
        done_with_key = True
        if operands:
            base = value if ikey.kind == KIND_VALUE else None
            yield current_key, fold(current_key, base), operand_seq
            operands = []
        elif ikey.kind == KIND_VALUE:
            yield current_key, value, ikey.seq
        # KIND_DELETE with no pending operands: key is simply hidden.
    if operands and current_key is not None:
        yield current_key, fold(current_key, None), operand_seq


def clip_to_range(
    resolved: Iterator[tuple[bytes, bytes, int]],
    lo: bytes | None,
    hi: bytes | None,
) -> Iterator[tuple[bytes, bytes, int]]:
    """Keep only keys with ``lo <= key <= hi`` (``None`` = unbounded)."""
    for key, value, seq in resolved:
        if lo is not None and key < lo:
            continue
        if hi is not None and key > hi:
            return
        yield key, value, seq
