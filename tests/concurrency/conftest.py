"""Shared setup for the concurrency suite.

A hung interleaving (scheduler bug, lost wakeup, real deadlock) must not
wedge the whole test run.  ``pytest-timeout`` is used in CI but is not a
hard dependency; this dependency-free watchdog arms
:func:`faulthandler.dump_traceback_later` around every test so a hang
dumps every thread's stack and kills the process instead of blocking
forever.
"""

from __future__ import annotations

import faulthandler

import pytest

#: Generous per-test ceiling; the suite's slowest test is well under 30 s.
WATCHDOG_SECONDS = 120.0


@pytest.fixture(autouse=True)
def hang_watchdog():
    faulthandler.dump_traceback_later(WATCHDOG_SECONDS, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()
