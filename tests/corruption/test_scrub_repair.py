"""The scrubber (find rot early) and RepairDB (salvage what remains).

The scrubber re-reads every live block with CRC verification *always* on
— ``paranoid_checks`` gates the engine's own reads, never the audit.
Repair treats the directory listing as ground truth, keeps clean tables,
rebuilds partly-bad tables from their good blocks, salvages the WAL with
a fragment-skipping reader, and installs a fresh manifest — dropping
only provably-bad data.
"""

from __future__ import annotations

import pytest

from repro.lsm.db import DB
from repro.lsm.faults import FaultInjectingVFS
from repro.lsm.repair import repair_db

from drill_utils import corruption_options, populate, table_files, wal_files


def flip_data_block(vfs, name):
    """Corrupt the first data block of a stored table; returns its offset."""
    from test_containment import block_offsets

    data_offsets, _ = block_offsets(vfs, name)
    vfs.flip_bit(name, data_offsets[0] + 3)
    return data_offsets[0]


class TestScrubber:
    def test_clean_database_scrubs_clean(self, faulty_db):
        _vfs, db, _expected = faulty_db
        report = db.scrub()
        assert report.complete
        assert report.clean
        assert report.tables_scanned >= 2
        assert report.blocks_verified > report.tables_scanned
        assert report.wal_files_verified >= 1
        assert report.manifest_verified

    def test_scrub_ignores_paranoid_checks_setting(self, faulty_db):
        """The satellite guarantee: scrub verifies every CRC even though
        the engine's own reads (paranoid_checks=False here) do not."""
        vfs, db, _expected = faulty_db
        assert not db.options.paranoid_checks
        flip_data_block(vfs, table_files(vfs)[0])
        report = db.scrub()
        assert not report.clean
        assert any("CRC mismatch" in problem for problem in report.problems)

    def test_verify_integrity_ignores_paranoid_checks_too(self, faulty_db):
        vfs, db, _expected = faulty_db
        assert not db.options.paranoid_checks
        flip_data_block(vfs, table_files(vfs)[0])
        report = db.verify_integrity()
        assert not report.ok
        assert any("CRC mismatch" in problem for problem in report.problems)

    def test_scrub_quarantines_under_policy(self, faulty_db):
        vfs, db, expected = faulty_db
        flip_data_block(vfs, table_files(vfs)[0])
        report = db.scrub()
        assert report.quarantined
        assert db.stats()["corruption"]["tables_quarantined"] >= 1
        # After quarantine, reads serve around the rot without error.
        got = dict(db.scan())
        for key, value in got.items():
            assert expected[key] == value
        # A second scrub skips the quarantined file: clean, fewer blocks.
        second = db.scrub()
        assert second.clean
        assert second.blocks_verified < report.blocks_verified

    def test_budgeted_scrub_resumes_to_full_coverage(self, faulty_db):
        _vfs, db, _expected = faulty_db
        full = db.scrub()
        assert db._scrubber.cycles_completed == 1
        slices = []
        report = db.scrub(block_budget=2)
        slices.append(report)
        while not report.complete:
            report = db.scrub(block_budget=2)
            slices.append(report)
        assert len(slices) > 1, "budget of 2 must take several slices"
        assert sum(s.blocks_verified for s in slices) == full.blocks_verified
        assert sum(s.tables_scanned for s in slices) == full.tables_scanned
        assert db._scrubber.cycles_completed == 2

    def test_budgeted_scrub_still_finds_rot(self, faulty_db):
        vfs, db, _expected = faulty_db
        flip_data_block(vfs, table_files(vfs)[-1])  # last table: late find
        problems = []
        report = db.scrub(block_budget=1)
        problems.extend(report.problems)
        while not report.complete:
            report = db.scrub(block_budget=1)
            problems.extend(report.problems)
        assert any("CRC mismatch" in problem for problem in problems)

    def test_scrub_reports_wal_corruption(self, faulty_db):
        vfs, db, _expected = faulty_db
        # Two records after the flush: rot in the *first* is mid-file
        # corruption (a rotten final record is a torn tail by design and
        # ends replay silently instead).
        db.put(b"tail-key-1", b"tail-value")
        db.put(b"tail-key-2", b"tail-value")
        wal = wal_files(vfs)[-1]
        vfs.flip_bit(wal, 10)  # inside the first record's payload
        report = db.scrub()
        assert any("WAL" in problem for problem in report.problems)


class TestRepair:
    def test_repair_clean_database_is_lossless(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options())
        expected = populate(db)
        db.close()
        report = repair_db(vfs, "db", corruption_options())
        assert report.tables_dropped == 0
        assert report.blocks_dropped == 0
        db = DB.open(vfs, "db", corruption_options())
        assert dict(db.scan()) == expected
        assert db.verify_integrity().ok
        db.close()

    def test_repair_salvages_partly_bad_table(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options())
        expected = populate(db)
        db.close()
        flip_data_block(vfs, table_files(vfs)[0])
        report = repair_db(vfs, "db", corruption_options())
        assert report.tables_salvaged >= 1
        assert report.blocks_dropped >= 1
        db = DB.open(vfs, "db", corruption_options())
        got = dict(db.scan())
        # Only the bad block's rows are gone; every surviving row is right.
        for key, value in got.items():
            assert expected[key] == value
        assert len(got) < len(expected)
        assert db.verify_integrity().ok
        assert db.scrub().clean
        db.close()

    def test_repair_drops_unreadable_table(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options())
        expected = populate(db)
        db.close()
        victim = table_files(vfs)[0]
        # Garble the footer: the table cannot even be opened.
        vfs.garble(victim, vfs.file_size(victim) - 48, 48)
        report = repair_db(vfs, "db", corruption_options())
        assert report.tables_dropped == 1
        db = DB.open(vfs, "db", corruption_options())
        got = dict(db.scan())
        for key, value in got.items():
            assert expected[key] == value
        assert db.verify_integrity().ok
        db.close()

    def test_repair_salvages_wal_records(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options())
        expected = populate(db, rows=50)
        # More writes that live only in the WAL (no flush before close).
        for i in range(40):
            key = f"wal{i:03d}".encode()
            db.put(key, b"wal-value")
            expected[key] = b"wal-value"
        db.close()
        assert wal_files(vfs), "unflushed writes leave a WAL behind"
        report = repair_db(vfs, "db", corruption_options())
        assert report.wal_records_salvaged > 0
        db = DB.open(vfs, "db", corruption_options())
        assert dict(db.scan()) == expected
        assert db.verify_integrity().ok
        db.close()

    def test_repair_skips_bad_wal_fragment_keeps_rest(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options())
        expected = populate(db, rows=50)
        for i in range(40):
            key = f"wal{i:03d}".encode()
            db.put(key, b"wal-value")
            expected[key] = b"wal-value"
        db.close()
        wal = wal_files(vfs)[-1]
        vfs.flip_bit(wal, 10)
        repair_db(vfs, "db", corruption_options())
        db = DB.open(vfs, "db", corruption_options())
        got = dict(db.scan())
        # Records in the damaged 32 KiB block after the bad fragment are
        # dropped (their framing is untrustworthy); nothing is *wrong*.
        for key, value in got.items():
            assert expected[key] == value
        assert db.verify_integrity().ok
        db.close()

    def test_dry_run_mutates_nothing(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options())
        populate(db)
        db.close()
        flip_data_block(vfs, table_files(vfs)[0])
        before = {name: bytes(file.data)
                  for name, file in vfs._files.items()}
        report = repair_db(vfs, "db", corruption_options(), dry_run=True)
        assert report.dry_run
        assert report.actions, "dry run still reports what it would do"
        after = {name: bytes(file.data)
                 for name, file in vfs._files.items()}
        assert after == before

    def test_repair_is_idempotent(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options())
        expected = populate(db)
        db.close()
        flip_data_block(vfs, table_files(vfs)[0])
        repair_db(vfs, "db", corruption_options())
        first = None
        db = DB.open(vfs, "db", corruption_options())
        first = dict(db.scan())
        db.close()
        second_report = repair_db(vfs, "db", corruption_options())
        assert second_report.tables_dropped == 0
        assert second_report.blocks_dropped == 0
        db = DB.open(vfs, "db", corruption_options())
        assert dict(db.scan()) == first
        for key, value in first.items():
            assert expected[key] == value
        db.close()
