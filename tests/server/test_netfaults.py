"""Unit tests for the network fault machinery and client retry plumbing:
schedules, transports, backoff, reconnect, and the close()/checkout race.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS
from repro.server import Client, Server
from repro.server.client import ClientClosedError, RetryPolicy
from repro.server.netfaults import FaultSchedule, FaultyConnector
from repro.server.protocol import ProtocolError


@pytest.fixture()
def kv_server():
    db = DB.open(MemoryVFS(), "data", Options(background_compaction=True))
    server = Server(db)
    server.start()
    yield server, db
    server.close()
    db.close()


def _fast_retry(**overrides):
    """A RetryPolicy that never sleeps for real (drills stay instant)."""
    defaults = dict(deadline=30.0, base_delay=0.001, max_delay=0.01,
                    sleep=lambda _s: None)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def connect(server, schedule=None, **kwargs):
    host, port = server.address
    if schedule is not None:
        kwargs["connector"] = FaultyConnector(schedule)
    return Client(host, port, **kwargs)


# -- FaultSchedule -----------------------------------------------------------

class TestFaultSchedule:
    def test_overlapping_send_faults_rejected(self):
        with pytest.raises(ValueError, match="send faults overlap"):
            FaultSchedule(break_send_at={1, 2}, torn_send_at={2})
        with pytest.raises(ValueError, match="response faults overlap"):
            FaultSchedule(drop_response_at={3}, torn_response_at={3})

    def test_counters_and_injected_log(self):
        schedule = FaultSchedule(refuse_connects=1, break_send_at={2},
                                 drop_response_at={1})
        with pytest.raises(ConnectionRefusedError):
            schedule.on_connect()
        schedule.on_connect()
        assert schedule.on_send() is None
        assert schedule.on_send() == "break"
        assert schedule.on_response() == "drop"
        assert (schedule.connects, schedule.sends,
                schedule.responses) == (2, 2, 1)
        assert schedule.injected == [("refuse_connect", 1),
                                     ("break_send", 2),
                                     ("drop_response", 1)]

    def test_random_is_reproducible(self):
        first = FaultSchedule.random(42, sends=100)
        second = FaultSchedule.random(42, sends=100)
        assert first.break_send_at == second.break_send_at
        assert first.torn_send_at == second.torn_send_at
        assert first.drop_response_at == second.drop_response_at
        assert first.torn_response_at == second.torn_response_at
        different = FaultSchedule.random(43, sends=100)
        assert (first.break_send_at, first.drop_response_at) != \
            (different.break_send_at, different.drop_response_at)

    def test_random_respects_fault_rate_extremes(self):
        none = FaultSchedule.random(1, sends=50, fault_rate=0.0)
        assert not (none.break_send_at | none.torn_send_at
                    | none.drop_response_at | none.torn_response_at)
        full = FaultSchedule.random(1, sends=50, fault_rate=1.0)
        assert (full.break_send_at | full.torn_send_at) == \
            set(range(1, 51))

    def test_delay_hook_sees_every_event(self):
        events = []
        schedule = FaultSchedule(delay=events.append)
        schedule.on_connect()
        schedule.on_send()
        schedule.on_response()
        assert events == ["net:connect:1", "net:send:1", "net:response:1"]


# -- RetryPolicy -------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.4)
        assert policy.backoff(3) == pytest.approx(0.5)  # capped
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_jitter_only_shrinks(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5)
        for attempt in range(6):
            nominal = min(1.0, 0.1 * 2 ** attempt)
            for _ in range(20):
                delay = policy.backoff(attempt)
                assert nominal * 0.5 <= delay <= nominal


# -- reconnect / retry wiring -------------------------------------------------

class TestReconnect:
    def test_refused_connects_retried_within_deadline(self, kv_server):
        server, _db = kv_server
        slept = []
        schedule = FaultSchedule(refuse_connects=3)
        policy = _fast_retry(sleep=slept.append)
        with connect(server, schedule, retry=policy) as client:
            assert client.put(b"k", b"v") == 1
        assert schedule.connects == 4  # 3 refusals + 1 success
        assert len(slept) == 3
        # Exponential shape survives jitter: each nominal doubles.
        assert slept[0] <= 0.001 and slept[1] <= 0.002

    def test_without_retry_refusal_surfaces(self, kv_server):
        server, _db = kv_server
        schedule = FaultSchedule(refuse_connects=1)
        with connect(server, schedule) as client:
            with pytest.raises(ConnectionRefusedError):
                client.put(b"k", b"v")

    def test_deadline_exhaustion_reraises_last_error(self, kv_server):
        server, _db = kv_server
        clock = [0.0]

        def fake_clock():
            return clock[0]

        def fake_sleep(seconds):
            clock[0] += seconds

        schedule = FaultSchedule(refuse_connects=10_000)
        policy = RetryPolicy(deadline=0.05, base_delay=0.01,
                             sleep=fake_sleep, clock=fake_clock)
        with connect(server, schedule, retry=policy) as client:
            with pytest.raises(ConnectionRefusedError):
                client.put(b"k", b"v")
        # The deadline bounded the attempts well below the fault budget.
        assert schedule.connects < 100

    def test_torn_response_without_retry_is_protocol_error(self, kv_server):
        server, _db = kv_server
        schedule = FaultSchedule(torn_response_at={1})
        with connect(server, schedule) as client:
            with pytest.raises(ProtocolError):
                client.put(b"k", b"v")

    def test_remote_error_is_never_retried(self, kv_server):
        server, _db = kv_server
        from repro.server import RemoteError
        with connect(server, retry=_fast_retry()) as client:
            before = server.stats.requests
            with pytest.raises(RemoteError):
                client._call("frobnicate", [])
            # Exactly one request reached the server: no blind retries
            # of an answered (failed) call.
            assert server.stats.requests == before + 1


# -- close() semantics (satellite a) ------------------------------------------

class TestClientClose:
    def test_closed_client_raises_client_closed(self, kv_server):
        server, _db = kv_server
        client = connect(server)
        client.put(b"k", b"v")
        client.close()
        with pytest.raises(ClientClosedError):
            client.get(b"k")
        client.close()  # idempotent

    def test_close_wakes_blocked_checkout_waiter(self, kv_server):
        """A thread parked in checkout (pool exhausted) must be woken
        with ClientClosedError by close(), not left hanging forever."""
        server, _db = kv_server
        client = connect(server, pool_size=1)
        client.put(b"seed", b"v")       # materialize the one connection
        conn = client._checkout()        # hold it: the pool is now empty
        results = []

        def waiter():
            try:
                client.get(b"seed")
            except BaseException as exc:  # noqa: BLE001 - inspected below
                results.append(exc)
            else:
                results.append(None)

        threads = [threading.Thread(target=waiter) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.1)  # let the waiters park on the empty pool
        client.close()
        for thread in threads:
            thread.join(timeout=5)
            assert not thread.is_alive(), "checkout waiter hung on close()"
        assert len(results) == 3
        assert all(isinstance(r, ClientClosedError) for r in results)
        client._release(conn)  # held connection discards cleanly

    def test_close_is_not_retried_into(self, kv_server):
        """ClientClosedError must pierce the retry loop immediately."""
        server, _db = kv_server
        attempts = []
        policy = _fast_retry(sleep=attempts.append)
        client = connect(server, retry=policy)
        client.close()
        with pytest.raises(ClientClosedError):
            client.put(b"k", b"v")
        assert attempts == []  # zero backoff sleeps: it never retried
