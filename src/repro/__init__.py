"""LevelDB++ in Python.

A faithful, pure-Python reproduction of the system built for the SIGMOD 2018
paper *"A Comparative Study of Secondary Indexing Techniques in LSM-based
NoSQL Databases"* (Qader, Cheng, Hristidis).

The package is organised in three layers:

``repro.lsm``
    A from-scratch LevelDB-style log-structured merge-tree storage engine:
    skiplist MemTable, write-ahead log, block-partitioned immutable SSTables
    with bloom filters and zone maps, leveled compaction and versioned
    manifests.  All I/O flows through a virtual filesystem that counts block
    reads and writes, so experiments report deterministic I/O costs instead
    of hardware-dependent wall time.

``repro.core``
    The paper's contribution: five secondary-indexing techniques implemented
    on top of the same engine — the *Embedded* index (per-block secondary
    bloom filters + zone maps), and the *Eager*, *Lazy* and *Composite*
    Stand-Alone indexes — plus a no-index baseline, the analytic cost models
    of Tables 3 and 5, and the index-selection strategy of Figure 2.

``repro.workloads``
    The Twitter-based synthetic dataset and operation workload generators
    used throughout the paper's evaluation (Static and Mixed workloads).

Quickstart::

    from repro import SecondaryIndexedDB, IndexKind

    db = SecondaryIndexedDB.open_memory(
        indexes={"user_id": IndexKind.LAZY})
    db.put("t1", {"user_id": "u1", "text": "hello"})
    db.put("t2", {"user_id": "u1", "text": "world"})
    results = db.lookup("user_id", "u1", k=10)
"""

from typing import Any

__version__ = "1.0.0"

# Public names are resolved lazily (PEP 562) so that importing one layer —
# say, the bare storage engine — does not pull in the others.
_EXPORTS = {
    "DB": ("repro.lsm.db", "DB"),
    "IOStats": ("repro.lsm.vfs", "IOStats"),
    "IndexKind": ("repro.core.base", "IndexKind"),
    "IndexSelector": ("repro.core.selector", "IndexSelector"),
    "LocalVFS": ("repro.lsm.vfs", "LocalVFS"),
    "LookupResult": ("repro.core.base", "LookupResult"),
    "MemoryVFS": ("repro.lsm.vfs", "MemoryVFS"),
    "Options": ("repro.lsm.options", "Options"),
    "SecondaryIndexedDB": ("repro.core.database", "SecondaryIndexedDB"),
    "ShardedDB": ("repro.dist.cluster", "ShardedDB"),
    "ThreadSafeDB": ("repro.core.concurrent", "ThreadSafeDB"),
    "WorkloadProfile": ("repro.core.selector", "WorkloadProfile"),
    "analyze_trace": ("repro.core.analyzer", "analyze_trace"),
    "verify_integrity": ("repro.lsm.checker", "verify_integrity"),
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value
