"""Transient read faults: bounded retry, then containment.

A flaky device returns EIO now and then; the engine retries with bounded
backoff (``Options.read_retries``) because the next attempt usually
succeeds.  A read that *keeps* failing is promoted to
:class:`CorruptionError` so the normal containment ladder (raise or
quarantine) applies — the engine never crash-loops on a dead sector.
"""

from __future__ import annotations

import pytest

from repro.lsm.db import DB
from repro.lsm.errors import CorruptionError, ReadFaultError
from repro.lsm.faults import FaultInjectingVFS

from drill_utils import corruption_options, populate


def reopen(vfs, **overrides) -> DB:
    """Open fresh (empty table cache) so every table open hits the VFS."""
    return DB.open(vfs, "db", corruption_options(**overrides))


class TestTransientRetry:
    def test_one_transient_eio_is_invisible(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options(read_retries=2))
        expected = populate(db)
        db.close()
        db = reopen(vfs, read_retries=2)
        # Fail the next read op once: the retry makes the GET succeed.
        vfs.schedule_read_error(vfs.read_op_count + 1)
        assert db.get(b"k0000") == expected[b"k0000"]
        db.close()

    def test_retry_burst_up_to_budget_is_invisible(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options(read_retries=3))
        expected = populate(db)
        db.close()
        db = reopen(vfs, read_retries=3)
        vfs.schedule_read_error(vfs.read_op_count + 1, count=3)
        assert db.get(b"k0123") == expected[b"k0123"]
        db.close()

    def test_zero_retries_surfaces_the_fault(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db",
                     corruption_options(read_retries=0,
                                        on_corruption="raise"))
        populate(db)
        db.close()
        db = reopen(vfs, read_retries=0, on_corruption="raise")
        vfs.schedule_read_error(vfs.read_op_count + 1, count=10)
        with pytest.raises((CorruptionError, ReadFaultError)):
            db.get(b"k0000")
        db.close()


class TestPersistentFaultContainment:
    def test_exhausted_retries_become_corruption(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db",
                     corruption_options(read_retries=1,
                                        on_corruption="raise"))
        populate(db)
        db.close()
        db = reopen(vfs, read_retries=1, on_corruption="raise")
        # More consecutive failures than the budget: the read gives up.
        vfs.schedule_read_error(vfs.read_op_count + 1, count=50)
        with pytest.raises(CorruptionError):
            db.get(b"k0000")
        db.close()

    def test_quarantine_policy_serves_around_dead_sector(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db", corruption_options(read_retries=1))
        populate(db)
        db.close()
        db = reopen(vfs, read_retries=1)
        vfs.schedule_read_error(vfs.read_op_count + 1, count=50)
        # The GET does not raise: the unreadable table is quarantined and
        # served around.  The result may be None (missing-but-detected) —
        # never an exception, never garbage.
        db.get(b"k0000")
        assert db.stats()["corruption"]["tables_quarantined"] >= 1
        db.close()

    def test_corruption_error_is_never_retried(self):
        """CRC failures are not transient: the bytes arrived, but wrong."""
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db",
                     corruption_options(read_retries=5,
                                        on_corruption="raise",
                                        paranoid_checks=True))
        populate(db)
        db.close()
        table = sorted(n for n in vfs.list_dir("db/")
                       if n.endswith(".ldb"))[0]
        vfs.flip_bit(table, 40)
        db = reopen(vfs, read_retries=5, on_corruption="raise",
                    paranoid_checks=True)
        reads_before = vfs.read_op_count
        with pytest.raises(CorruptionError):
            for _ in db.scan():
                pass
        # If the CRC failure had been retried, we would see ~read_retries
        # extra reads of the same block.  Allow the handful of reads the
        # scan legitimately performs before hitting the bad block.
        assert vfs.read_op_count - reads_before < 40
        db.close()


class TestInFlightCorruption:
    def test_bitflip_in_flight_detected_by_paranoid_read(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db",
                     corruption_options(paranoid_checks=True))
        expected = populate(db)
        db.close()
        db = reopen(vfs, paranoid_checks=True)
        from repro.lsm.vfs import Category

        vfs.corrupt_reads(1, name_substring=".ldb", category=Category.DATA)
        db.get(b"k0000")  # contained, not raised
        # The stored bytes were never damaged: once the flaky transfer
        # passes, a fresh DB reads everything back perfectly.
        db.close()
        db = reopen(vfs, paranoid_checks=True)
        assert {k: v for k, v in db.scan()} == expected
        db.close()

    def test_garbled_page_in_flight(self):
        vfs = FaultInjectingVFS()
        db = DB.open(vfs, "db",
                     corruption_options(paranoid_checks=True))
        expected = populate(db)
        db.close()
        db = reopen(vfs, paranoid_checks=True)
        from repro.lsm.vfs import Category

        vfs.corrupt_reads(1, name_substring=".ldb",
                          category=Category.DATA, mode="garble")
        db.get(b"k0000")
        db.close()
        db = reopen(vfs, paranoid_checks=True)
        assert {k: v for k, v in db.scan()} == expected
        db.close()
