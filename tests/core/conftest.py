"""Fixtures for core-layer index tests."""

from __future__ import annotations

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.options import Options


@pytest.fixture
def index_options() -> Options:
    return Options(
        block_size=1024,
        sstable_target_size=4 * 1024,
        memtable_budget=4 * 1024,
        l1_target_size=16 * 1024,
    )


def open_db(kind: IndexKind, options: Options,
            attributes: tuple[str, ...] = ("UserID",)) -> SecondaryIndexedDB:
    return SecondaryIndexedDB.open_memory(
        indexes={attr: kind for attr in attributes}, options=options)


def load_tweets(db: SecondaryIndexedDB, count: int, users: int = 10,
                start: int = 0) -> dict[str, dict]:
    """Insert ``count`` deterministic tweets; returns the final state."""
    state = {}
    for i in range(start, start + count):
        key = f"t{i:05d}"
        doc = {"UserID": f"u{i % users}", "CreationTime": 1000 + i,
               "Body": "b" * 40}
        db.put(key, doc)
        state[key] = doc
    return state
