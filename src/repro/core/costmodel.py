"""Analytic cost models — the paper's Section 3.1, Section 4.3 and Tables 3/5.

The formulas predict worst-case (and some expected-case) *disk block
accesses* per operation for each indexing technique, as a function of:

==========  ===================================================================
``L``       number of levels in the store
``N``       size ratio between consecutive levels (10 in LevelDB)
``b``       number of blocks in level 0
``fp``      bloom-filter false-positive rate (Equation 1)
``PL_S``    average posting-list length (Eager)
``l``       number of indexed attributes
``K'``      matched entries examined for a top-K query (K' >= K)
``M``       index-table blocks intersecting a RANGELOOKUP's value range
==========  ===================================================================

``bench_table3_5_costmodel.py`` checks the measured I/O of every index
against these bounds; :mod:`repro.core.selector` uses them to rank
techniques for a workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import IndexKind
from repro.lsm.bloom import expected_false_positive_rate


@dataclass
class CostModel:
    """Paper cost formulas, parameterised by store shape."""

    levels: int = 4
    level_ratio: int = 10
    level0_blocks: int = 100
    bloom_bits_per_key: float = 100.0
    avg_posting_list_length: float = 30.0
    num_indexed_attributes: int = 1

    @property
    def false_positive_rate(self) -> float:
        """Equation 1 at the optimal probe count: ``2^-(m/S) ln 2``."""
        return expected_false_positive_rate(self.bloom_bits_per_key)

    # -- write amplification (Section 4.3) ----------------------------------------

    def wamf(self, kind: IndexKind) -> float:
        """Write amplification of the *index table* for one technique.

        Lazy and Composite compact like a plain table:
        ``2 (N+1) (L-1) = 22 (L-1)`` at N=10.  Eager rewrites an average of
        ``PL_S`` postings per write: ``PL_S * 22 * (L-1)``.  Embedded and
        NoIndex maintain no index table at all.
        """
        base = 2 * (self.level_ratio + 1) * max(0, self.levels - 1)
        if kind in (IndexKind.LAZY, IndexKind.COMPOSITE):
            return float(base)
        if kind == IndexKind.EAGER:
            return self.avg_posting_list_length * base
        return 0.0

    # -- per-operation disk accesses (Tables 3 and 5) -------------------------------

    def put_cost(self, kind: IndexKind) -> tuple[float, float]:
        """(reads, writes) charged to index maintenance per PUT.

        The data-table write itself (1) is common to all techniques and
        excluded, as in the paper's analysis.
        """
        l = self.num_indexed_attributes
        if kind == IndexKind.EAGER:
            return (float(l), float(l))
        if kind in (IndexKind.LAZY, IndexKind.COMPOSITE):
            return (0.0, float(l))
        return (0.0, 0.0)

    def get_cost(self, kind: IndexKind) -> float:
        """Disk accesses for a primary-key GET: 1 for every technique."""
        return 1.0

    def lookup_cost(self, kind: IndexKind, k_matched: int,
                    epsilon: float = 0.0) -> float:
        """Expected/worst-case block accesses for LOOKUP(A, a, K).

        * Embedded (Table 3): ``(K + eps) + fp * b * (N^(L+1) - 1)/(N - 1)``
          — the matched blocks plus bloom false positives across all levels
          (the paper states the N=10 closed form ``fp * b * (10^(L+1)-1)/9``).
        * Eager (Table 5): ``K' + 1`` — one list read plus a GET per match.
        * Lazy / Composite: ``K' + L`` — up to one index read per level.
        """
        if kind == IndexKind.EMBEDDED:
            geometric = (self.level_ratio ** (self.levels + 1) - 1) \
                / (self.level_ratio - 1)
            return (k_matched + epsilon) \
                + self.false_positive_rate * self.level0_blocks * geometric
        if kind == IndexKind.EAGER:
            return k_matched + 1.0
        if kind in (IndexKind.LAZY, IndexKind.COMPOSITE):
            return k_matched + float(self.levels)
        return float("inf")  # NoIndex: the whole table

    def range_lookup_cost(self, kind: IndexKind, k_matched: int,
                          range_blocks: int,
                          time_correlated: bool = False,
                          epsilon: float = 0.0) -> float:
        """Worst-case block accesses for RANGELOOKUP(A, a, b, K).

        Embedded: ``K + eps`` when the attribute is time-correlated (zone
        maps prune almost everything); otherwise effectively a full scan —
        represented as infinity, "same as no index".  Stand-alone variants:
        ``M`` index blocks plus ``K'`` validation GETs.
        """
        if kind == IndexKind.EMBEDDED:
            if time_correlated:
                return k_matched + epsilon
            return float("inf")
        if kind in (IndexKind.EAGER, IndexKind.LAZY, IndexKind.COMPOSITE):
            return k_matched + float(range_blocks)
        return float("inf")

    # -- aggregate workload cost (used by the selector) -----------------------------

    def workload_cost(self, kind: IndexKind, put_fraction: float,
                      get_fraction: float, lookup_fraction: float,
                      k_matched: int = 10,
                      time_correlated: bool = False) -> float:
        """Expected disk accesses per operation for an operation mix.

        A coarse scalarisation of Tables 3/5 — write costs are scaled by
        the technique's WAMF share to reflect compaction traffic — used to
        *rank* techniques, not to predict absolute numbers.
        """
        reads, writes = self.put_cost(kind)
        amplified_writes = writes * (1 + self.wamf(kind)
                                     / max(1.0, self.wamf(IndexKind.LAZY) or 1.0))
        put = reads + amplified_writes
        lookup = self.lookup_cost(kind, k_matched)
        if lookup == float("inf"):
            # A full scan touches every block: approximate with the store's
            # total block count.
            total_blocks = self.level0_blocks * (
                (self.level_ratio ** self.levels - 1) / (self.level_ratio - 1))
            lookup = total_blocks
        return (put_fraction * put
                + get_fraction * self.get_cost(kind)
                + lookup_fraction * lookup)
