"""Migrate-under-load drills.

Two attack surfaces on the shard-split state machine:

1. **Interleavings** — DFS-enumerate schedules of a writer racing a
   live split around the ring flip and the WAL-tail handoff.  Every
   interleaving must converge to the same final state: nothing lost,
   nothing duplicated, every query answered from the post-split ring
   exactly as the operation oracle predicts.

2. **Crashes** — enumerate destination-filesystem crash points with
   :class:`FaultInjectingVFS`.  A crash before the ring flips aborts
   with *zero* orphan files and an untouched source; a crash after the
   flip is committed and must finish via resume.  Either way
   ``verify_integrity()`` is clean on both sides and a retry succeeds.

``REPRO_DIST_DRILLS=full`` widens the enumeration for CI;
``DIST_DRILL_LOG_DIR`` keeps per-run logs as artifacts.
"""

import json
import os

import pytest

from repro.core.base import IndexKind
from repro.dist.cluster import ShardedDB
from repro.dist.migration import MigrationError
from repro.dist.partitioner import SplitHashRing
from repro.lsm.errors import SimulatedCrashError
from repro.lsm.faults import FaultInjectingVFS
from repro.lsm.options import Options
from repro.lsm.testing import DeterministicScheduler, explore_interleavings

FULL = os.environ.get("REPRO_DIST_DRILLS") == "full"


def _options():
    return Options(block_size=512, sstable_target_size=2 * 1024,
                   memtable_budget=2 * 1024, l1_target_size=8 * 1024)


def _open_cluster():
    return ShardedDB.open_memory(num_shards=2, replication_factor=1,
                                 local_indexes={"UserID": IndexKind.LAZY},
                                 options=_options())


def _open_log(basename):
    log_dir = os.environ.get("DIST_DRILL_LOG_DIR")
    if not log_dir:
        return None
    os.makedirs(log_dir, exist_ok=True)
    return open(os.path.join(log_dir, basename), "w")


def _classify_keys():
    """Pick concrete keys by where the split moves them: shard 0 keys
    that migrate to the new shard 2, and shard 0 keys that stay."""
    ring = SplitHashRing(2)
    split = ring.with_split(0, 2)
    moving, staying = [], []
    for i in range(10_000):
        key = f"m{i:05d}"
        if ring.shard_of(key.encode()) != 0:
            continue
        (moving if split.shard_of(key.encode()) == 2 else staying).append(key)
        if len(moving) >= 4 and len(staying) >= 4:
            return moving[:4], staying[:4]
    raise AssertionError("key space too small to classify")


MOVING, STAYING = _classify_keys()


def _preload(cluster):
    acked = {}
    for i, key in enumerate(MOVING[:2] + STAYING[:2]):
        doc = {"UserID": f"u{i % 2}", "n": -1}
        cluster.put(key, doc)
        acked[key] = doc
    return acked


def _expect_lookup(acked, value, results):
    got = sorted(r.key for r in results)
    want = sorted(k for k, d in acked.items()
                  if d is not None and d["UserID"] == value)
    assert got == want


def _final_checks(cluster, acked):
    live = sorted((k, d) for k, d in acked.items() if d is not None)
    assert sorted(cluster.scan()) == live
    for key, doc in acked.items():
        assert cluster.get(key) == doc
    for value in ("u0", "u1"):
        _expect_lookup(acked, value,
                       cluster.lookup("UserID", value,
                                      early_termination=False))
    assert sum(cluster.shard_record_counts()) == len(live)
    report = cluster.verify_integrity()
    assert all(r.ok for r in report.values())


def _race_scenario(sched):
    """A writer races a full shard-0 split; returns the run's observable
    outcome for cross-interleaving comparison."""
    cluster = _open_cluster()
    acked = _preload(cluster)
    cluster.instrument(sched)
    errors = []

    def writer():
        try:
            doc = {"UserID": "u0", "n": 1}
            cluster.put(MOVING[2], doc)      # lands mid-split or after
            acked[MOVING[2]] = doc
            doc2 = {"UserID": "u1", "n": 2}
            cluster.put(STAYING[2], doc2)    # never moves
            acked[STAYING[2]] = doc2
            cluster.delete(MOVING[0])        # preloaded, moving key
            acked[MOVING[0]] = None
            _expect_lookup(acked, "u0",
                           cluster.lookup("UserID", "u0",
                                          early_termination=False))
        except BaseException as exc:  # noqa: BLE001 - reported by the test
            errors.append(exc)

    split_box = []

    def migrator():
        try:
            split_box.append(cluster.begin_split(0).run())
        except BaseException as exc:  # noqa: BLE001 - reported by the test
            errors.append(exc)

    writer_thread = sched.spawn("writer", writer)
    migrator_thread = sched.spawn("migrator", migrator)
    sched.wait_threads(writer_thread, migrator_thread)
    sched.shutdown()
    assert not errors, f"drill thread failed: {errors[0]!r}"
    split = split_box[0]
    assert split.phase == "done"
    assert cluster.splits_completed == 1
    assert len(cluster.data_shards) == 3
    _final_checks(cluster, acked)
    outcome = {
        "state": {key: (None if doc is None
                        else tuple(sorted(doc.items())))
                  for key, doc in acked.items()},
        "counts": cluster.shard_record_counts(),
        "replayed": split.replayed,
        "journal_tail_seen": split.replayed > 0,
    }
    cluster.close()
    return outcome


class TestSplitInterleavings:
    def test_every_interleaving_converges_to_the_same_state(self):
        limit = 400 if FULL else 120
        results = explore_interleavings(_race_scenario,
                                        max_interleavings=limit)
        assert len(results) >= 10, "scenario did not branch enough to drill"
        states = {json.dumps(outcome["state"], sort_keys=True)
                  for _decisions, outcome in results}
        assert len(states) == 1, "final state depends on the interleaving"
        counts = {tuple(outcome["counts"]) for _d, outcome in results}
        assert len(counts) == 1
        # The enumeration must actually exercise the WAL-tail handoff
        # (the quiet no-tail path is pinned separately below), and every
        # explored schedule must be distinct.
        assert any(outcome["journal_tail_seen"] for _d, outcome in results)
        assert len({tuple(d) for d, _o in results}) == len(results)
        log = _open_log("migration-interleavings.log")
        if log is not None:
            with log:
                for decisions, outcome in results:
                    log.write(json.dumps({"decisions": decisions,
                                          "replayed": outcome["replayed"]})
                              + "\n")

    def test_quiet_split_never_touches_the_journal(self):
        # The no-contention flavour: all writes land before or after the
        # split, so the WAL tail stays empty and nothing is replayed.
        cluster = _open_cluster()
        acked = _preload(cluster)
        split = cluster.split_shard(0)
        assert split.replayed == 0 and split.skipped == 0
        doc = {"UserID": "u0", "n": 9}
        cluster.put(MOVING[3], doc)
        acked[MOVING[3]] = doc
        _final_checks(cluster, acked)
        cluster.close()

    def test_one_schedule_replays_bit_for_bit(self):
        first_sched = DeterministicScheduler(seed=11)
        first = _race_scenario(first_sched)
        replay_sched = DeterministicScheduler(
            script=list(first_sched.decisions), default="first")
        second = _race_scenario(replay_sched)
        assert first == second
        assert list(replay_sched.decisions) == list(first_sched.decisions)


class TestSplitCrashDrills:
    def _probe_clean_ops(self):
        cluster = _open_cluster()
        acked = _preload(cluster)
        vfs = FaultInjectingVFS()
        split = cluster.begin_split(0, vfs_factory=lambda _rid: vfs).run()
        assert split.phase == "done"
        _final_checks(cluster, acked)
        total = vfs.op_count
        cluster.close()
        return total

    def test_crash_at_every_destination_write(self):
        total = self._probe_clean_ops()
        assert total > 10, "split too small to enumerate crash points"
        stride = 1 if FULL else max(1, total // 16)
        log = _open_log("migration-crash.log")
        outcomes = {"aborted": 0, "resumed": 0}
        try:
            for at_op in range(1, total + 1, stride):
                outcome = self._crash_drill(at_op)
                outcomes[outcome] += 1
                if log is not None:
                    log.write(json.dumps({"at_op": at_op,
                                          "outcome": outcome}) + "\n")
        finally:
            if log is not None:
                log.close()
        assert outcomes["aborted"] > 0, "no crash landed before the flip"

    def _crash_drill(self, at_op):
        cluster = _open_cluster()
        acked = _preload(cluster)
        vfs = FaultInjectingVFS()
        vfs.schedule_crash(at_op)
        split = cluster.begin_split(0, vfs_factory=lambda _rid: vfs)
        with pytest.raises(SimulatedCrashError):
            split.run()
        vfs.reboot()
        if split.phase in ("cleanup", "done"):
            # The ring flipped: the split is committed and must finish.
            with pytest.raises(MigrationError):
                split.abort()
            dest = split.dest
            dest.kill(0)
            assert dest.revive(0) == "up"
            split.run()
            assert split.phase == "done"
            outcome = "resumed"
        else:
            split.abort()
            assert split.phase == "aborted"
            assert split.orphan_files() == []
            assert cluster.splits_completed == 0
            assert len(cluster.data_shards) == 2
            # The source shard never noticed: retry on a fresh disk.
            retry = cluster.begin_split(
                0, vfs_factory=lambda _rid: FaultInjectingVFS()).run()
            assert retry.phase == "done"
            outcome = "aborted"
        _final_checks(cluster, acked)
        cluster.close()
        return outcome
