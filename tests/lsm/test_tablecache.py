"""Table cache: memoization, eviction, block-cache wiring."""

from repro.lsm.compression import NoCompression
from repro.lsm.keys import KIND_VALUE, pack_internal_key
from repro.lsm.manifest import table_file_name
from repro.lsm.options import Options
from repro.lsm.sstable import TableBuilder
from repro.lsm.tablecache import TableCache
from repro.lsm.vfs import MemoryVFS


def _write_table(vfs, number, count=50):
    options = Options(block_size=512, compression="none")
    out = vfs.create(table_file_name("db", number))
    builder = TableBuilder(options, out, NoCompression())
    for i in range(count):
        builder.add(pack_internal_key(f"k{i:03d}".encode(), 1, KIND_VALUE),
                    b"v")
    builder.finish()
    out.close()


class TestTableCache:
    def test_open_is_memoized(self):
        vfs = MemoryVFS()
        _write_table(vfs, 1)
        cache = TableCache(vfs, "db", Options(block_size=512))
        first = cache.get(1)
        reads_after_open = vfs.stats.read_blocks
        second = cache.get(1)
        assert first is second
        assert vfs.stats.read_blocks == reads_after_open  # no re-open I/O
        assert len(cache) == 1
        cache.close()

    def test_eviction_respects_capacity(self):
        vfs = MemoryVFS()
        for number in range(1, 6):
            _write_table(vfs, number)
        cache = TableCache(vfs, "db", Options(block_size=512),
                           max_open_files=3)
        for number in range(1, 6):
            cache.get(number)
        assert len(cache) == 3
        # Least-recently-used tables (1 and 2) were evicted; re-opening
        # works transparently.
        table = cache.get(1)
        assert table.num_data_blocks > 0
        cache.close()

    def test_explicit_evict(self):
        vfs = MemoryVFS()
        _write_table(vfs, 1)
        cache = TableCache(vfs, "db", Options(block_size=512))
        cache.get(1)
        cache.evict(1)
        assert len(cache) == 0
        cache.evict(1)  # idempotent
        cache.close()

    def test_block_cache_shared_across_tables(self):
        vfs = MemoryVFS()
        _write_table(vfs, 1)
        _write_table(vfs, 2)
        options = Options(block_size=512, block_cache_size=64 * 1024)
        cache = TableCache(vfs, "db", options)
        assert cache.block_cache is not None
        table1 = cache.get(1)
        table2 = cache.get(2)
        assert table1._block_cache is cache.block_cache
        assert table2._block_cache is cache.block_cache
        table1.read_data_block(0)
        table1.read_data_block(0)
        assert cache.block_cache.hits >= 1
        cache.close()

    def test_no_block_cache_by_default(self):
        vfs = MemoryVFS()
        _write_table(vfs, 1)
        cache = TableCache(vfs, "db", Options(block_size=512))
        assert cache.block_cache is None
        assert cache.get(1)._block_cache is None
        cache.close()

    def test_stats_counters(self):
        vfs = MemoryVFS()
        for number in range(1, 4):
            _write_table(vfs, number)
        cache = TableCache(vfs, "db", Options(block_size=512),
                           max_open_files=2)
        cache.get(1)
        cache.get(2)
        cache.get(1)  # hit — moves table 1 to the most-recent end
        cache.get(3)  # miss — evicts table 2, the least recently used
        assert cache.stats() == {"open_tables": 2, "max_open_files": 2,
                                 "hits": 1, "misses": 3, "evictions": 1}
        assert sorted(cache._tables) == [1, 3]
        cache.close()

    def test_bound_defaults_to_options(self):
        vfs = MemoryVFS()
        cache = TableCache(vfs, "db",
                           Options(block_size=512, max_open_files=7))
        assert cache.max_open_files == 7
        cache.close()
