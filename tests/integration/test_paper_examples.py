"""The paper's worked examples (Examples 1-3, Tables 4a/4b)."""

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.core.posting import decode_posting_list
from repro.lsm.options import Options
from repro.lsm.zonemap import encode_attribute


def _open(kind):
    options = Options(block_size=1024, sstable_target_size=4 * 1024,
                      memtable_budget=4 * 1024, l1_target_size=16 * 1024)
    return SecondaryIndexedDB.open_memory(
        indexes={"UserID": kind}, options=options)


class TestExample2:
    """PUT(t1,u1) PUT(t2,u1) PUT(t3,u2) PUT(t4,u2) — Tables 4a and 4b:
    UserIndex must read u1 -> [t2, t1] and u2 -> [t4, t3]."""

    def _load(self, db):
        db.put("t1", {"UserID": "u1", "text": "t1 text"})
        db.put("t2", {"UserID": "u1", "text": "t2 text"})
        db.put("t3", {"UserID": "u2", "text": "t3 text"})
        db.put("t4", {"UserID": "u2", "text": "t4 text"})

    def test_eager_index_state_matches_table_4b(self):
        db = _open(IndexKind.EAGER)
        self._load(db)
        index = db.indexes["UserID"]
        u1_list = decode_posting_list(
            index.index_db.get(encode_attribute("u1")))
        u2_list = decode_posting_list(
            index.index_db.get(encode_attribute("u2")))
        assert [e.key for e in u1_list] == ["t2", "t1"]
        assert [e.key for e in u2_list] == ["t4", "t3"]
        db.close()

    def test_lookup_results_all_variants(self):
        for kind in IndexKind:
            db = _open(kind)
            self._load(db)
            assert [r.key for r in db.lookup("UserID", "u1")] == ["t2", "t1"]
            assert [r.key for r in db.lookup("UserID", "u2")] == ["t4", "t3"]
            db.close()


class TestExample3:
    """PUT(t3, {u1, ...}) after Example 2: t3 moves from u2 to u1.

    Figure 4-6 show each index's state transition; observable here is that
    all variants must now answer u1 -> [t3, t2, t1], u2 -> [t4]."""

    def test_update_moves_record_between_posting_lists(self):
        for kind in IndexKind:
            db = _open(kind)
            db.put("t1", {"UserID": "u1", "text": "t text"})
            db.put("t2", {"UserID": "u1", "text": "t2 text"})
            db.put("t3", {"UserID": "u2", "text": "t3 text"})
            db.put("t4", {"UserID": "u2", "text": "t4 text"})
            db.put("t3", {"UserID": "u1", "text": "t text"})
            assert [r.key for r in db.lookup("UserID", "u1")] == \
                ["t3", "t2", "t1"], kind
            assert [r.key for r in db.lookup("UserID", "u2")] == ["t4"], kind
            # The move must survive compaction too (Figures 4-6 show the
            # post-compaction states).
            db.compact_all()
            assert [r.key for r in db.lookup("UserID", "u1")] == \
                ["t3", "t2", "t1"], kind
            assert [r.key for r in db.lookup("UserID", "u2")] == ["t4"], kind
            db.close()


class TestExample1LazyVsEager:
    """Example 1: the Lazy PUT writes a fragment without reading; the Eager
    PUT performs a read-modify-write."""

    def test_write_path_reads_differ(self):
        eager_db = _open(IndexKind.EAGER)
        lazy_db = _open(IndexKind.LAZY)
        for i in range(50):
            eager_db.put(f"t{i}", {"UserID": "u1"})
            lazy_db.put(f"t{i}", {"UserID": "u1"})
        eager_reads = eager_db.indexes["UserID"].index_db.vfs.stats.read_blocks
        lazy_reads = lazy_db.indexes["UserID"].index_db.vfs.stats.read_blocks
        assert eager_db.indexes["UserID"].write_path_reads == 50
        assert lazy_reads <= eager_reads
        eager_db.close()
        lazy_db.close()
