"""Configuration-matrix equivalence: options must never change answers.

Compaction style, compression, block cache and the buffer-cache simulator
all trade performance — none may alter a single query result.  The same
randomized operation stream runs under each configuration and every
outcome is compared against the plain-default run.
"""

import random

import pytest

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.cache import BufferCacheSimulator
from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS

_CONFIGS = {
    "baseline": {},
    "full_level": {"compaction_style": "full_level"},
    "no_compression": {"compression": "none"},
    "block_cache": {"block_cache_size": 128 * 1024},
    "paranoid": {"paranoid_checks": True},
    "big_blocks": {"block_size": 4096, "sstable_target_size": 16 * 1024},
}


def _options(**overrides):
    base = dict(block_size=1024, sstable_target_size=4 * 1024,
                memtable_budget=4 * 1024, l1_target_size=16 * 1024)
    base.update(overrides)
    return Options(**base)


def _run_stream(db, seed=500, num_ops=1200):
    rng = random.Random(seed)
    for i in range(num_ops):
        key = f"t{rng.randrange(250):05d}"
        if rng.random() < 0.1:
            db.delete(key)
        else:
            db.put(key, {"UserID": f"u{rng.randrange(12):03d}",
                         "CreationTime": i, "Body": "b" * rng.randrange(40)})


def _answers(db):
    answers = {}
    for user_index in range(12):
        value = f"u{user_index:03d}"
        answers[("lookup", value)] = [
            (r.seq, r.key) for r in db.lookup("UserID", value,
                                              early_termination=False)]
    answers["range"] = [
        (r.seq, r.key) for r in db.range_lookup(
            "CreationTime", 300, 700, early_termination=False)]
    answers["scan"] = list(db.scan())
    return answers


@pytest.fixture(scope="module")
def baseline_answers():
    db = SecondaryIndexedDB.open_memory(
        indexes={"UserID": IndexKind.LAZY,
                 "CreationTime": IndexKind.EMBEDDED},
        options=_options())
    _run_stream(db)
    answers = _answers(db)
    db.close()
    return answers


@pytest.mark.parametrize("config_name", sorted(_CONFIGS))
def test_config_never_changes_answers(config_name, baseline_answers):
    db = SecondaryIndexedDB.open_memory(
        indexes={"UserID": IndexKind.LAZY,
                 "CreationTime": IndexKind.EMBEDDED},
        options=_options(**_CONFIGS[config_name]))
    _run_stream(db)
    assert _answers(db) == baseline_answers, config_name
    db.close()


def test_buffer_cache_simulator_never_changes_answers(baseline_answers):
    cache = BufferCacheSimulator(MemoryVFS(), 256 * 1024)
    db = SecondaryIndexedDB.open(
        cache, "data",
        {"UserID": IndexKind.LAZY, "CreationTime": IndexKind.EMBEDDED},
        _options())
    _run_stream(db)
    assert _answers(db) == baseline_answers
    db.close()
