"""Twitter-based dataset and operation workload generators (paper Section 5.1).

The paper's evaluation is driven by a custom generator because "there is no
workload generator which allows fine-grained control of the ratio of queries
on primary to secondary attributes".  This subpackage reproduces it:

* :mod:`repro.workloads.tweets` — a synthetic tweet generator whose UserID
  rank-frequency distribution matches the paper's seed dataset (Figure 7)
  and whose CreationTime attribute is time-correlated by construction;
* :mod:`repro.workloads.generator` — the *Static* (build, then query) and
  *Mixed* (interleaved reads/writes/updates) operation generators with the
  paper's Table 7 parameterisation;
* :mod:`repro.workloads.runner` — executes a workload against a
  :class:`repro.core.database.SecondaryIndexedDB`, sampling latency and
  I/O-meter series the way the paper's figures report them.
"""

from repro.workloads.generator import (
    MIXED_RATIOS,
    MixedWorkload,
    StaticWorkload,
)
from repro.workloads.ops import Delete, Get, Lookup, Put, RangeLookup
from repro.workloads.runner import (
    LatencyRecorder,
    RunReport,
    WorkloadRunner,
    nearest_rank_index,
)
from repro.workloads.tweets import SeedProfile, TweetGenerator

__all__ = [
    "Delete",
    "Get",
    "LatencyRecorder",
    "Lookup",
    "MIXED_RATIOS",
    "MixedWorkload",
    "Put",
    "RangeLookup",
    "RunReport",
    "SeedProfile",
    "StaticWorkload",
    "TweetGenerator",
    "WorkloadRunner",
    "nearest_rank_index",
]
