"""The sharded store: routing, local vs global indexes, exact top-K."""

import random

import pytest

from repro.core.base import IndexKind
from repro.dist.cluster import SequenceOracle, ShardedDB
from repro.dist.partitioner import HashPartitioner
from repro.lsm.errors import DBClosedError, InvalidArgumentError
from repro.lsm.options import Options


def _options():
    return Options(block_size=1024, sstable_target_size=4 * 1024,
                   memtable_budget=4 * 1024, l1_target_size=16 * 1024)


def _local_cluster(num_shards=4, kind=IndexKind.LAZY):
    return ShardedDB.open_memory(
        num_shards=num_shards, local_indexes={"UserID": kind},
        options=_options())


def _global_cluster(num_shards=4):
    return ShardedDB.open_memory(
        num_shards=num_shards, global_indexes=("UserID",),
        options=_options())


def _apply_random_ops(cluster, seed, num_ops, num_keys=300, num_users=15):
    rng = random.Random(seed)
    oracle = {}
    for i in range(num_ops):
        key = f"t{rng.randrange(num_keys):05d}"
        if rng.random() < 0.08:
            cluster.delete(key)
            oracle.pop(key, None)
        else:
            doc = {"UserID": f"u{rng.randrange(num_users):03d}",
                   "Body": "x" * rng.randrange(30)}
            seq = cluster.put(key, doc)
            oracle[key] = (doc, seq)
    return oracle


def _oracle_lookup(oracle, value):
    return sorted(((seq, key) for key, (doc, seq) in oracle.items()
                   if doc["UserID"] == value), reverse=True)


class TestPartitioner:
    def test_stable_and_in_range(self):
        partitioner = HashPartitioner(5)
        for i in range(200):
            shard = partitioner.shard_of(f"key{i}".encode())
            assert 0 <= shard < 5
            assert shard == partitioner.shard_of(f"key{i}".encode())

    def test_roughly_balanced(self):
        partitioner = HashPartitioner(4)
        counts = [0] * 4
        for i in range(4000):
            counts[partitioner.shard_of(f"key{i}".encode())] += 1
        assert min(counts) > 700  # within ~30% of perfect balance

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestSequenceOracle:
    def test_monotone_allocation(self):
        oracle = SequenceOracle()
        first = oracle.allocate(3)
        second = oracle.allocate(1)
        assert first == 1
        assert second == 4
        assert oracle.last_allocated == 4


class TestRouting:
    def test_put_get_delete_roundtrip(self):
        cluster = _local_cluster()
        cluster.put("k1", {"UserID": "u1"})
        assert cluster.get("k1") == {"UserID": "u1"}
        cluster.delete("k1")
        assert cluster.get("k1") is None
        cluster.close()

    def test_records_spread_across_shards(self):
        cluster = _local_cluster()
        for i in range(400):
            cluster.put(f"k{i:04d}", {"UserID": "u1"})
        counts = cluster.shard_record_counts()
        assert sum(counts) == 400
        assert all(count > 40 for count in counts)
        cluster.close()

    def test_unindexed_attribute_rejected(self):
        cluster = _local_cluster()
        with pytest.raises(InvalidArgumentError):
            cluster.lookup("Body", "x")
        cluster.close()

    def test_overlapping_scopes_rejected(self):
        with pytest.raises(InvalidArgumentError):
            ShardedDB.open_memory(local_indexes={"UserID": IndexKind.LAZY},
                                  global_indexes=("UserID",),
                                  options=_options())

    def test_closed_cluster(self):
        cluster = _local_cluster()
        cluster.close()
        with pytest.raises(DBClosedError):
            cluster.get("k")
        cluster.close()  # idempotent


@pytest.mark.parametrize("scope", ["local", "global"])
class TestEquivalence:
    def _cluster(self, scope):
        if scope == "local":
            return _local_cluster()
        return _global_cluster()

    def test_lookup_matches_oracle(self, scope):
        cluster = self._cluster(scope)
        oracle = _apply_random_ops(cluster, seed=301, num_ops=1500)
        for user_index in range(15):
            value = f"u{user_index:03d}"
            got = [(r.seq, r.key) for r in cluster.lookup(
                "UserID", value, early_termination=False)]
            assert got == _oracle_lookup(oracle, value), (scope, value)
        cluster.close()

    def test_top_k_exact_across_shards(self, scope):
        cluster = self._cluster(scope)
        oracle = _apply_random_ops(cluster, seed=302, num_ops=1200)
        for user_index in range(0, 15, 3):
            value = f"u{user_index:03d}"
            got = [(r.seq, r.key) for r in cluster.lookup(
                "UserID", value, k=5, early_termination=False)]
            assert got == _oracle_lookup(oracle, value)[:5], (scope, value)
        cluster.close()

    def test_range_lookup_matches_oracle(self, scope):
        cluster = self._cluster(scope)
        oracle = _apply_random_ops(cluster, seed=303, num_ops=1200)
        got = [(r.seq, r.key) for r in cluster.range_lookup(
            "UserID", "u003", "u007", early_termination=False)]
        want = sorted(((seq, key) for key, (doc, seq) in oracle.items()
                       if "u003" <= doc["UserID"] <= "u007"), reverse=True)
        assert got == want
        cluster.close()

    def test_updates_move_records(self, scope):
        cluster = self._cluster(scope)
        cluster.put("k1", {"UserID": "u001"})
        cluster.put("k1", {"UserID": "u002"})
        assert cluster.lookup("UserID", "u001",
                              early_termination=False) == []
        assert [r.key for r in cluster.lookup(
            "UserID", "u002", early_termination=False)] == ["k1"]
        cluster.close()


class TestFanOut:
    def test_local_lookup_contacts_every_shard(self):
        cluster = _local_cluster(num_shards=6)
        _apply_random_ops(cluster, seed=304, num_ops=300)
        cluster.data_shards_contacted = 0
        cluster.lookup("UserID", "u001", k=5)
        assert cluster.data_shards_contacted == 6
        cluster.close()

    def test_global_lookup_contacts_one_index_shard(self):
        cluster = _global_cluster(num_shards=6)
        _apply_random_ops(cluster, seed=305, num_ops=300)
        gsi = cluster.global_indexes["UserID"]
        gsi.shards_contacted = 0
        cluster.data_shards_contacted = 0
        results = cluster.lookup("UserID", "u001", k=5)
        assert gsi.shards_contacted == 1
        # Data-shard GETs only for validation of the returned candidates.
        assert cluster.data_shards_contacted <= max(5, len(results) + 3)
        cluster.close()

    def test_global_range_scatters_index_ring(self):
        cluster = _global_cluster(num_shards=4)
        _apply_random_ops(cluster, seed=306, num_ops=300)
        gsi = cluster.global_indexes["UserID"]
        gsi.shards_contacted = 0
        cluster.range_lookup("UserID", "u000", "u005", k=5)
        assert gsi.shards_contacted == len(gsi.shards)
        cluster.close()


class TestGlobalIndexMaintenance:
    def test_deletes_clean_global_index(self):
        cluster = _global_cluster()
        cluster.put("k1", {"UserID": "u001"})
        cluster.put("k2", {"UserID": "u001"})
        cluster.delete("k1")
        assert [r.key for r in cluster.lookup(
            "UserID", "u001", early_termination=False)] == ["k2"]
        cluster.close()

    def test_total_size_includes_gsi(self):
        cluster = _global_cluster()
        _apply_random_ops(cluster, seed=307, num_ops=500)
        for shard in cluster.data_shards:
            shard.flush()
        for index in cluster.global_indexes.values():
            for lazy in index.shards:
                lazy.flush()
        assert cluster.total_size() > 0
        assert cluster.global_indexes["UserID"].size_bytes() > 0
        cluster.close()
