"""Concurrent-client benchmark: background pipeline vs inline maintenance.

Measures what the background flush/compaction pipeline buys a
multi-threaded writer: with inline maintenance a put occasionally pays for
a whole flush (and its cascade of compactions) in its own latency, so the
write tail is dominated by maintenance; the pipeline moves that work to a
background thread and the tail collapses to the stall ladder.  A plain
script, not a pytest module::

    PYTHONPATH=src python benchmarks/bench_concurrent.py \
        [--scale full|ci] [--threads N] [--output FILE] [--check]

Per mode it reports client throughput, put latency percentiles (p50/p99),
and the engine's pipeline gauges (stalls, group commit, background runs).
``--check`` is the CI smoke gate: the background mode must cut the p99 put
latency to at most ``P99_TOLERANCE`` of inline's while keeping at least
``THROUGHPUT_TOLERANCE`` of its throughput.

``--interference`` runs the compaction-interference scenario instead
(DESIGN.md §11): steady GET load while a forced major compaction runs,
comparing how much read throughput each engine mode *retains* —

* ``inline``: single-threaded contract, readers serialize with the
  compaction behind one lock (reads effectively stop);
* ``threaded``: compaction on another thread, same interpreter — the GIL
  forces readers and the merge to time-share;
* ``multiprocess``: compaction in worker processes + shared-memory block
  cache — the coordinator waits in ``poll`` (GIL released) and readers
  keep the interpreter.

The multiprocess win requires a second CPU; the report records ``cpus``
and ``--check`` arms the retention gate only when the run had >= 2.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core.concurrent import ThreadSafeDB  # noqa: E402
from repro.core.database import SecondaryIndexedDB  # noqa: E402
from repro.lsm.options import Options  # noqa: E402
from repro.workloads.ops import Get, Put  # noqa: E402
from repro.workloads.runner import WorkloadRunner  # noqa: E402

SCHEMA = 1

#: CI fails when background p99 put latency exceeds this fraction of the
#: inline p99 measured in the same run (same machine, same interference).
P99_TOLERANCE = 0.90

#: ...or when background throughput drops below this fraction of inline's.
THROUGHPUT_TOLERANCE = 0.60

#: Every mode runs this many times and the run with the lowest p99 wins —
#: same spirit as ``bench_engine_micro``'s best-of timing: the minimum is
#: the run least disturbed by other tenants of the machine, which matters
#: doubly for tail latencies on shared CI runners.
REPEATS = 3

#: Small geometry so flushes and compactions actually happen at benchmark
#: op counts; zlib (the paper's engine default) makes maintenance heavy
#: enough to dominate the inline write tail.
ENGINE_OPTIONS = dict(
    block_size=2048,
    sstable_target_size=16 * 1024,
    # Small enough that well over 1% of puts trigger maintenance: the
    # inline p99 then *structurally* contains a flush, instead of flushes
    # straddling the percentile boundary and making the ratio bimodal.
    memtable_budget=8 * 1024,
    l1_target_size=64 * 1024,
    compression="zlib",
)

SCALES = {
    "full": dict(threads=4, puts_per_thread=4000),
    "ci": dict(threads=4, puts_per_thread=1200),
}


def _streams(threads: int, puts_per_thread: int) -> list:
    """Per-thread op lists: 9 puts then 1 get of an own key, repeated."""
    streams = []
    for tid in range(threads):
        ops = []
        for i in range(puts_per_thread):
            body = "x" * (60 + (i * 7919 + tid) % 80)
            ops.append(Put(f"t{tid}-{i:06d}",
                           {"UserID": f"u{(i + tid) % 97:04d}",
                            "body": body}))
            if i % 10 == 9:
                ops.append(Get(f"t{tid}-{i - 5:06d}"))
        streams.append(ops)
    return streams


def run_mode(background: bool, threads: int, puts_per_thread: int) -> dict:
    best = None
    for _ in range(REPEATS):
        result = _run_mode_once(background, threads, puts_per_thread)
        if best is None or result["put_p99_micros"] < best["put_p99_micros"]:
            best = result
    return best


def _run_mode_once(background: bool, threads: int,
                   puts_per_thread: int) -> dict:
    options = Options(background_compaction=background, **ENGINE_OPTIONS)
    db = SecondaryIndexedDB.open_memory(indexes={}, options=options)
    # The inline engine is single-threaded by contract: concurrent clients
    # must serialize through ThreadSafeDB.  The pipeline engine takes
    # concurrent callers directly.
    target = db if background else ThreadSafeDB(db)
    report = WorkloadRunner(target).run_concurrent(
        _streams(threads, puts_per_thread))
    if report.errors:
        raise RuntimeError(f"benchmark clients failed: {report.errors}")
    db.flush()
    pipeline = db.primary.stats()["pipeline"]
    db.close()
    return {
        "background": background,
        "threads": report.threads,
        "total_ops": report.total_ops,
        "wall_seconds": round(report.wall_seconds, 4),
        "ops_per_sec": round(report.ops_per_sec, 1),
        "put_mean_micros": round(report.mean_micros("put"), 2),
        "put_p50_micros": round(report.percentile_micros("put", 0.50), 2),
        "put_p99_micros": round(report.percentile_micros("put", 0.99), 2),
        "put_max_micros": round(
            report.percentile_micros("put", 1.0), 2),
        "get_p99_micros": round(report.percentile_micros("get", 0.99), 2),
        "pipeline": {
            "stall_events": pipeline["stall_events"],
            "stall_seconds": round(pipeline["stall_seconds"], 4),
            "slowdown_events": pipeline["slowdown_events"],
            "mean_group_batches": round(pipeline["mean_group_batches"], 3),
            "max_group_batches": pipeline["max_group_batches"],
            "bg_flushes": pipeline["bg_flushes"],
            "bg_compactions": pipeline["bg_compactions"],
        },
    }


def run_benchmark(scale: str, threads: int | None) -> dict:
    cfg = SCALES[scale]
    n_threads = threads or cfg["threads"]
    inline = run_mode(False, n_threads, cfg["puts_per_thread"])
    background = run_mode(True, n_threads, cfg["puts_per_thread"])
    comparison = {
        "throughput_ratio": round(
            background["ops_per_sec"] / inline["ops_per_sec"], 3),
        "p99_ratio": round(
            background["put_p99_micros"] / inline["put_p99_micros"], 3),
        "p50_ratio": round(
            background["put_p50_micros"] / inline["put_p50_micros"], 3),
    }
    return {
        "schema": SCHEMA,
        "harness": "benchmarks/bench_concurrent.py",
        "scale": scale,
        "python": sys.version.split()[0],
        "inline": inline,
        "background": background,
        "comparison": comparison,
    }


def check(report: dict) -> int:
    """CI gate: the pipeline must actually deliver its latency win."""
    comparison = report["comparison"]
    failures = []
    p99 = comparison["p99_ratio"]
    status = "ok" if p99 <= P99_TOLERANCE else "REGRESSED"
    print(f"  put_p99 background/inline   {p99:6.2f}x  "
          f"(must be <= {P99_TOLERANCE})  [{status}]")
    if p99 > P99_TOLERANCE:
        failures.append("put_p99")
    throughput = comparison["throughput_ratio"]
    status = "ok" if throughput >= THROUGHPUT_TOLERANCE else "REGRESSED"
    print(f"  throughput background/inline{throughput:6.2f}x  "
          f"(must be >= {THROUGHPUT_TOLERANCE})  [{status}]")
    if throughput < THROUGHPUT_TOLERANCE:
        failures.append("throughput")
    if failures:
        print(f"FAIL: background pipeline lost its edge on "
              f"{', '.join(failures)}")
        return 1
    print("concurrent benchmark smoke: pipeline win holds")
    return 0


# -- compaction interference (multiprocess executor, DESIGN.md §11) -----------

#: Worker processes for the multiprocess mode.
INTERFERENCE_PROCESSES = 2

#: With a real second CPU, multiprocess must retain this multiple of the
#: threaded mode's contended GET throughput (acceptance says >= 1.3x on an
#: idle multicore box; the CI gate stays conservative for noisy runners).
INTERFERENCE_TOLERANCE = 1.15

#: Geometry for the interference dataset: auto-compaction disabled (huge
#: L0 triggers) so the forced ``compact_range`` is the only maintenance in
#: the measured window, and every key overwritten each round so the merge
#: has real dropping/deduplication work.
INTERFERENCE_OPTIONS = dict(
    block_size=4096,
    sstable_target_size=32 * 1024,
    memtable_budget=1 << 30,  # explicit flushes only
    l0_compaction_trigger=999,
    l0_slowdown_writes_trigger=1000,
    l0_stop_writes_trigger=1001,
    compression="zlib",
)

INTERFERENCE_SCALES = {
    "full": dict(readers=2, rounds=10, keys=2500, baseline_seconds=1.5),
    "ci": dict(readers=2, rounds=6, keys=1200, baseline_seconds=0.6),
}

INTERFERENCE_MODES = ("inline", "threaded", "multiprocess")


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _interference_db(mode: str, root: str):
    from repro.lsm.db import DB
    from repro.lsm.vfs import LocalVFS

    overrides = dict(INTERFERENCE_OPTIONS)
    if mode != "inline":
        overrides["background_compaction"] = True
    if mode == "multiprocess":
        overrides["compaction_processes"] = INTERFERENCE_PROCESSES
        overrides["shm_cache_bytes"] = 4 << 20
    db = DB.open(LocalVFS(root), "db", Options(**overrides))
    if mode == "multiprocess" and db._executor is None:
        raise RuntimeError("multiprocess executor failed to start")
    return db


def _read_loop(db, lock, keys, stop, counts, index):
    i = index
    ops = 0
    step = 7919  # prime stride: touches every key, defeats block locality
    n = len(keys)
    while not stop.is_set():
        if lock is not None:
            with lock:
                db.get(keys[i % n])
        else:
            db.get(keys[i % n])
        i += step
        ops += 1
    counts.append(ops)


def _measure_reads(db, lock, keys, readers, window_fn):
    """Reader throughput over the window ``window_fn`` defines.

    ``window_fn(stop_event)`` runs in the driver thread and returns when
    the window closes (a timer, or a compaction finishing); it must set
    ``stop_event`` before returning.
    """
    import threading
    import time

    stop = threading.Event()
    counts: list = []
    threads = [
        threading.Thread(target=_read_loop,
                         args=(db, lock, keys, stop, counts, seed * 131),
                         daemon=True)
        for seed in range(readers)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    window_fn(stop)
    elapsed = time.monotonic() - started
    for thread in threads:
        thread.join()
    return sum(counts) / elapsed, elapsed


def _run_interference_mode(mode: str, cfg: dict) -> dict:
    import tempfile
    import threading
    import time

    keys = [f"k{i:06d}".encode() for i in range(cfg["keys"])]
    with tempfile.TemporaryDirectory(prefix=f"bench-intf-{mode}-") as root:
        db = _interference_db(mode, root)
        try:
            for r in range(cfg["rounds"]):
                for i, key in enumerate(keys):
                    db.put(key, f"r{r}-{i}".encode() * 16)
                db.flush()
            lock = threading.RLock() if mode == "inline" else None

            def timed_window(stop):
                time.sleep(cfg["baseline_seconds"])
                stop.set()

            baseline_ops, _ = _measure_reads(
                db, lock, keys, cfg["readers"], timed_window)

            compaction_seconds = []

            def compaction_window(stop):
                started = time.monotonic()
                if lock is not None:
                    with lock:
                        db.compact_range()
                else:
                    db.compact_range()
                compaction_seconds.append(time.monotonic() - started)
                stop.set()

            contended_ops, window = _measure_reads(
                db, lock, keys, cfg["readers"], compaction_window)

            result = {
                "mode": mode,
                "baseline_gets_per_sec": round(baseline_ops, 1),
                "contended_gets_per_sec": round(contended_ops, 1),
                "retention": round(contended_ops / baseline_ops, 3),
                "compaction_seconds": round(compaction_seconds[0], 3),
                "levels": db.level_file_counts(),
            }
            pipeline = db.stats()["pipeline"]
            if pipeline["workers"] is not None:
                workers = pipeline["workers"]
                result["workers"] = {
                    "processes": workers["processes"],
                    "jobs_completed": workers["jobs_completed"],
                    "jobs_failed": workers["jobs_failed"],
                    "worker_cpu_seconds": workers["worker_cpu_seconds"],
                }
                result["shm_cache"] = pipeline["shm_cache"]
            return result
        finally:
            db.close()


def run_interference(scale: str) -> dict:
    cfg = INTERFERENCE_SCALES[scale]
    modes = {mode: _run_interference_mode(mode, cfg)
             for mode in INTERFERENCE_MODES}
    threaded = modes["threaded"]["contended_gets_per_sec"]
    multiprocess = modes["multiprocess"]["contended_gets_per_sec"]
    return {
        "schema": SCHEMA,
        "harness": "benchmarks/bench_concurrent.py --interference",
        "scale": scale,
        "python": sys.version.split()[0],
        "cpus": _cpus(),
        "modes": modes,
        "comparison": {
            "multiprocess_vs_threaded": round(
                multiprocess / threaded, 3) if threaded else None,
            "threaded_retention": modes["threaded"]["retention"],
            "multiprocess_retention": modes["multiprocess"]["retention"],
        },
    }


def check_interference(report: dict) -> int:
    """CI gate: multiprocess must out-read threaded during compaction.

    Only meaningful with >= 2 CPUs — on one core the scheduler halves the
    core between server and worker, while the threaded mode's readers get
    the GIL between merge checkpoints, so the multiprocess win physically
    cannot appear.  Such runs pass with a notice instead of lying.
    """
    ratio = report["comparison"]["multiprocess_vs_threaded"]
    if report["cpus"] < 2:
        print(f"  interference gate SKIPPED: {report['cpus']} cpu(s); "
              f"multiprocess/threaded measured {ratio}x (informational)")
        return 0
    status = "ok" if ratio >= INTERFERENCE_TOLERANCE else "REGRESSED"
    print(f"  contended GETs multiprocess/threaded {ratio:6.2f}x  "
          f"(must be >= {INTERFERENCE_TOLERANCE})  [{status}]")
    if ratio < INTERFERENCE_TOLERANCE:
        print("FAIL: multiprocess compaction lost its interference win")
        return 1
    print("interference benchmark smoke: multiprocess win holds")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="full")
    parser.add_argument("--threads", type=int, default=None,
                        help="override the scale's client thread count")
    parser.add_argument("--output", help="write the JSON report here")
    parser.add_argument("--check", action="store_true",
                        help="gate on the background-vs-inline ratios "
                        "(CI mode)")
    parser.add_argument("--interference", action="store_true",
                        help="run the compaction-interference scenario "
                        "(GET retention during forced major compaction)")
    args = parser.parse_args(argv)

    if args.interference:
        report = run_interference(args.scale)
    else:
        report = run_benchmark(args.scale, args.threads)
    print(json.dumps(report, indent=2))

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        return check_interference(report) if args.interference \
            else check(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
