"""Crash-point enumeration over the durable topology.

The whole cluster — every shard replica *and* the CLUSTER manifest —
lives on one shared :class:`FaultInjectingVFS` (shard files carry a
``shard-N/`` name prefix, so one filesystem holds them all, exactly like
one data directory on a real disk).  The drill records the clean run's
mutating-operation log, then replays the workload crashing at every
enumerated operation — always including every CLUSTER/CLUSTER.tmp write,
the ops the two-phase split protocol stakes its correctness on — and
reopens through the manifest.  Every crash point must land on:

* the **old** topology (2 shards, no committed split) with *zero* files
  under the would-be destination's prefix (no orphan shard), or
* the **new** topology (3 shards, split committed) serving every acked
  write;

and in both cases ``verify_integrity()`` is clean and every write acked
before the crash answers with its exact document.  A write in flight at
the crash may legitimately be present or absent (it was never acked) —
anything else present is a corruption.

``REPRO_DIST_DRILLS=full`` enumerates every operation;
``DIST_DRILL_LOG_DIR`` keeps per-point outcomes as artifacts.
"""

import json
import os

import pytest

from repro.core.base import IndexKind
from repro.dist.cluster import ShardedDB
from repro.lsm.errors import SimulatedCrashError
from repro.lsm.faults import FaultInjectingVFS, FaultInjectedError
from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS

from tests.dist.test_migration_drills import MOVING, STAYING, _open_log

FULL = os.environ.get("REPRO_DIST_DRILLS") == "full"


def _options():
    return Options(block_size=512, sstable_target_size=2 * 1024,
                   memtable_budget=2 * 1024, l1_target_size=8 * 1024,
                   sync_writes=True)


def _open(vfs):
    return ShardedDB.open(lambda _sid, _rid: vfs, num_shards=2,
                          replication_factor=1,
                          local_indexes={"UserID": IndexKind.LAZY},
                          options=_options(), meta_vfs=vfs)


def _workload(vfs, record):
    """Preload, split shard 0, write post-split, close.

    ``record["acked"]`` collects writes whose put() returned;
    ``record["in_flight"]`` names the one write racing the crash."""
    acked = record["acked"]

    def put(cluster, key, doc):
        record["in_flight"] = (key, doc)
        cluster.put(key, doc)
        acked[key] = doc
        record["in_flight"] = None

    cluster = _open(vfs)
    for i, key in enumerate(MOVING[:2] + STAYING[:2]):
        put(cluster, key, {"UserID": f"u{i % 2}", "n": i})
    cluster.split_shard(0)
    record["split_done"] = True
    put(cluster, MOVING[2], {"UserID": "u0", "n": 100})
    put(cluster, STAYING[2], {"UserID": "u1", "n": 101})
    cluster.close()


def _reopen_and_check(vfs, record):
    """Reopen through the manifest and assert the drill invariants.

    Returns ``"old"`` or ``"new"`` — which side of the durable decision
    point the crash landed on."""
    reopened = _open(vfs)
    try:
        shards = len(reopened.data_shards)
        assert shards in (2, 3), f"impossible shard count {shards}"
        if shards == 2:
            assert reopened.ring.splits == ()
            # The un-flipped destination was purged whole: zero orphans.
            assert vfs.list_dir("shard-2/") == []
            outcome = "old"
        else:
            assert reopened.ring.splits == ((0, 2),)
            outcome = "new"
        topology = reopened.stats()["topology"]
        assert topology is not None and topology["durable"]
        assert topology["in_flight"] is None
        assert topology["pending_cleanup"] is False
        report = reopened.verify_integrity()
        assert all(r.ok for r in report.values()), report
        # Every acked write answers with its exact document...
        for key, doc in record["acked"].items():
            assert reopened.get(key) == doc, f"acked write {key!r} lost"
        # ...and nothing else exists, except possibly the one write that
        # was in flight (never acked) when the crash hit.
        live = dict(reopened.scan())
        extras = set(live) - set(record["acked"])
        in_flight = record["in_flight"]
        if in_flight is None:
            assert extras == set(), f"unexpected keys {sorted(extras)}"
        else:
            assert extras <= {in_flight[0]}, \
                f"unexpected keys {sorted(extras - {in_flight[0]})}"
            if in_flight[0] in extras:
                assert live[in_flight[0]] == in_flight[1]
        reopened.close()
    except BaseException:
        reopened.close()
        raise
    return outcome


def _baseline():
    """The clean run: total mutating ops plus the (kind, name) log."""
    vfs = FaultInjectingVFS()
    record = {"acked": {}, "in_flight": None, "split_done": False}
    _workload(vfs, record)
    assert record["split_done"]
    return vfs.op_count, list(vfs.op_log)


def _crash_points(total, op_log):
    """Which 1-based ops to crash at: everything under FULL, otherwise a
    stride sample plus *every* manifest write and its neighbours (the
    ops the durable protocol actually turns on)."""
    manifest_ops = {i + 1 for i, (_kind, name) in enumerate(op_log)
                    if name.startswith("CLUSTER")}
    assert manifest_ops, "workload never wrote the CLUSTER manifest"
    if FULL:
        return sorted(range(1, total + 1))
    points = set(range(1, total + 1, max(1, total // 24)))
    for at_op in manifest_ops:
        points.update(p for p in (at_op - 1, at_op, at_op + 1)
                      if 1 <= p <= total)
    return sorted(points)


class TestTopologyCrashDrills:
    def test_reopen_lands_on_old_or_new_topology_at_every_crash_point(self):
        total, op_log = _baseline()
        assert total > 50, "workload too small to enumerate"
        points = _crash_points(total, op_log)
        outcomes = {"old": 0, "new": 0}
        log = _open_log("topology-crash.log")
        try:
            for at_op in points:
                vfs = FaultInjectingVFS()
                vfs.schedule_crash(at_op)
                record = {"acked": {}, "in_flight": None,
                          "split_done": False}
                try:
                    _workload(vfs, record)
                except SimulatedCrashError:
                    pass
                else:
                    # Baseline-length runs may finish before late points.
                    record["in_flight"] = None
                vfs.reboot("drop")
                outcome = _reopen_and_check(vfs, record)
                outcomes[outcome] += 1
                if record["split_done"]:
                    assert outcome == "new", \
                        f"committed split lost at op {at_op}"
                if log is not None:
                    kind, name = (op_log[at_op - 1]
                                  if at_op <= len(op_log) else ("", ""))
                    log.write(json.dumps({
                        "at_op": at_op, "op": f"{kind}:{name}",
                        "outcome": outcome,
                        "acked": len(record["acked"])}) + "\n")
        finally:
            if log is not None:
                log.close()
        # The enumeration must straddle the durable decision point.
        assert outcomes["old"] > 0, "no crash landed before the flip commit"
        assert outcomes["new"] > 0, "no crash landed after the flip commit"

    def test_crash_during_initial_manifest_save_reopens_fresh(self):
        """A fresh cluster that dies mid-first-save reopens as a fresh
        cluster (stranded CLUSTER.tmp ignored) and saves durably then."""
        probe = FaultInjectingVFS()
        _open(probe).close()
        first_manifest_op = next(
            i + 1 for i, (_k, name) in enumerate(probe.op_log)
            if name.startswith("CLUSTER"))
        for at_op in range(first_manifest_op,
                           first_manifest_op + 4):
            vfs = FaultInjectingVFS()
            vfs.schedule_crash(at_op)
            try:
                _open(vfs).close()
            except SimulatedCrashError:
                pass
            vfs.reboot("drop")
            reopened = _open(vfs)
            try:
                assert len(reopened.data_shards) == 2
                assert reopened.stats()["topology"]["durable"]
            finally:
                reopened.close()


class TestManifestWriteErrors:
    """A manifest write that *fails* (ENOSPC-style, no crash) must leave
    the cluster retryable: the split either never registered or can be
    resumed, and the final state is exactly the clean run's."""

    def test_split_survives_a_failed_manifest_write_at_every_point(self):
        probe = FaultInjectingVFS()
        cluster = _open(probe)
        for i, key in enumerate(MOVING[:2] + STAYING[:2]):
            cluster.put(key, {"UserID": f"u{i % 2}", "n": i})
        ops_before_split = probe.op_count
        cluster.split_shard(0)
        cluster.close()
        # Manifest writes issued by the split itself (intent, flip,
        # cleanup), past open's initial save and the preload.
        split_ops = [i + 1 for i, (_k, name) in enumerate(probe.op_log)
                     if name.startswith("CLUSTER")
                     and i + 1 > ops_before_split]
        assert len(split_ops) >= 3 * 4  # three saves, four ops each
        for at_op in split_ops:
            vfs = FaultInjectingVFS()
            vfs.schedule_write_error(at_op)
            record = {"acked": {}, "in_flight": None, "split_done": False}
            acked = record["acked"]
            cluster = _open(vfs)
            try:
                for i, key in enumerate(MOVING[:2] + STAYING[:2]):
                    doc = {"UserID": f"u{i % 2}", "n": i}
                    cluster.put(key, doc)
                    acked[key] = doc
                split = cluster.begin_split(0)
                try:
                    split.run()
                except FaultInjectedError:
                    # The failed chunk left its phase unfinished; every
                    # chunk is restartable, so resuming converges.
                    split.run()
                assert split.phase == "done"
                assert len(cluster.data_shards) == 3
                assert cluster.ring.splits == ((0, 2),)
                topology = cluster.stats()["topology"]
                assert topology["in_flight"] is None
                assert topology["pending_cleanup"] is False
                for key, doc in acked.items():
                    assert cluster.get(key) == doc
                report = cluster.verify_integrity()
                assert all(r.ok for r in report.values())
            finally:
                cluster.close()
