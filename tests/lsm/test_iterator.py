"""Stream merging and version resolution."""

import json

import pytest

from repro.lsm.errors import InvalidArgumentError
from repro.lsm.iterator import clip_to_range, merge_streams, resolve_versions
from repro.lsm.keys import (
    KIND_DELETE,
    KIND_MERGE,
    KIND_VALUE,
    InternalKey,
)


def _entry(user, seq, kind=KIND_VALUE, value=b""):
    return InternalKey(user, seq, kind), value


def _union(key, operands):
    merged = []
    for operand in operands:
        merged.extend(json.loads(operand))
    return json.dumps(merged).encode()


class TestMergeStreams:
    def test_two_streams_interleave(self):
        s1 = [_entry(b"a", 1), _entry(b"c", 1)]
        s2 = [_entry(b"b", 1), _entry(b"d", 1)]
        merged = list(merge_streams([iter(s1), iter(s2)]))
        assert [ik.user_key for ik, _v in merged] == [b"a", b"b", b"c", b"d"]

    def test_same_key_newest_first(self):
        s1 = [_entry(b"k", 3, value=b"v3")]
        s2 = [_entry(b"k", 9, value=b"v9"), _entry(b"k", 1, value=b"v1")]
        merged = list(merge_streams([iter(s1), iter(s2)]))
        assert [ik.seq for ik, _v in merged] == [9, 3, 1]

    def test_empty_streams(self):
        assert list(merge_streams([])) == []
        assert list(merge_streams([iter([]), iter([])])) == []

    def test_single_stream_passthrough(self):
        entries = [_entry(b"a", 2), _entry(b"a", 1), _entry(b"b", 5)]
        assert list(merge_streams([iter(entries)])) == entries

    def test_many_streams(self):
        streams = [iter([_entry(f"k{i:02d}".encode(), 1)]) for i in range(20)]
        merged = list(merge_streams(streams))
        assert len(merged) == 20
        keys = [ik.user_key for ik, _v in merged]
        assert keys == sorted(keys)


class TestResolveVersions:
    def test_newest_value_wins(self):
        entries = [_entry(b"k", 5, value=b"new"), _entry(b"k", 2, value=b"old")]
        resolved = list(resolve_versions(iter(entries)))
        assert resolved == [(b"k", b"new", 5)]

    def test_tombstone_hides_key(self):
        entries = [_entry(b"k", 5, KIND_DELETE), _entry(b"k", 2, value=b"old")]
        assert list(resolve_versions(iter(entries))) == []

    def test_older_tombstone_ignored(self):
        entries = [_entry(b"k", 5, value=b"live"), _entry(b"k", 2, KIND_DELETE)]
        assert list(resolve_versions(iter(entries))) == [(b"k", b"live", 5)]

    def test_snapshot_bound(self):
        entries = [_entry(b"k", 9, value=b"future"),
                   _entry(b"k", 4, value=b"past")]
        resolved = list(resolve_versions(iter(entries), max_seq=5))
        assert resolved == [(b"k", b"past", 4)]

    def test_snapshot_sees_through_newer_delete(self):
        entries = [_entry(b"k", 9, KIND_DELETE), _entry(b"k", 4, value=b"v")]
        assert list(resolve_versions(iter(entries), max_seq=5)) == \
            [(b"k", b"v", 4)]

    def test_merge_chain_with_base(self):
        entries = [
            _entry(b"k", 5, KIND_MERGE, b"[3]"),
            _entry(b"k", 4, KIND_MERGE, b"[2]"),
            _entry(b"k", 1, KIND_VALUE, b"[1]"),
        ]
        resolved = list(resolve_versions(iter(entries),
                                         merge_operator=_union))
        assert resolved == [(b"k", b"[1, 2, 3]", 5)]

    def test_merge_chain_without_base(self):
        entries = [
            _entry(b"k", 5, KIND_MERGE, b"[2]"),
            _entry(b"k", 3, KIND_MERGE, b"[1]"),
        ]
        resolved = list(resolve_versions(iter(entries),
                                         merge_operator=_union))
        assert resolved == [(b"k", b"[1, 2]", 5)]

    def test_merge_chain_over_delete(self):
        entries = [
            _entry(b"k", 5, KIND_MERGE, b"[9]"),
            _entry(b"k", 3, KIND_DELETE),
            _entry(b"k", 1, KIND_VALUE, b"[1]"),
        ]
        resolved = list(resolve_versions(iter(entries),
                                         merge_operator=_union))
        assert resolved == [(b"k", b"[9]", 5)]

    def test_merge_chain_at_stream_end(self):
        entries = [
            _entry(b"a", 2, KIND_VALUE, b"x"),
            _entry(b"k", 5, KIND_MERGE, b"[1]"),
        ]
        resolved = list(resolve_versions(iter(entries),
                                         merge_operator=_union))
        assert resolved == [(b"a", b"x", 2), (b"k", b"[1]", 5)]

    def test_merge_without_operator_raises(self):
        entries = [_entry(b"k", 5, KIND_MERGE, b"[1]")]
        with pytest.raises(InvalidArgumentError):
            list(resolve_versions(iter(entries)))

    def test_multiple_keys(self):
        entries = [
            _entry(b"a", 3, value=b"va"),
            _entry(b"b", 9, KIND_DELETE),
            _entry(b"b", 1, value=b"vb"),
            _entry(b"c", 2, value=b"vc"),
        ]
        resolved = list(resolve_versions(iter(entries)))
        assert resolved == [(b"a", b"va", 3), (b"c", b"vc", 2)]


class TestClipToRange:
    def test_bounds_inclusive(self):
        resolved = [(b"a", b"", 1), (b"b", b"", 1), (b"c", b"", 1)]
        assert [k for k, _v, _s in clip_to_range(iter(resolved), b"b", b"b")] \
            == [b"b"]

    def test_unbounded(self):
        resolved = [(b"a", b"", 1), (b"z", b"", 1)]
        assert len(list(clip_to_range(iter(resolved), None, None))) == 2

    def test_early_exit_past_high(self):
        def stream():
            yield b"a", b"", 1
            yield b"m", b"", 1
            raise AssertionError("must not be pulled past the bound")

        got = list(clip_to_range(stream(), None, b"a"))
        assert [k for k, _v, _s in got] == [b"a"]
