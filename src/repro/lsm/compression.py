"""Per-block compression.

The paper uses LevelDB's default, Snappy, and measures its effect in
Appendix C.2.  Snappy bindings are unavailable offline, so zlib at level 1
(the stdlib's fastest setting, similar design point: cheap, modest ratio)
stands in behind the same one-byte block-type tag that LevelDB writes after
each block.  A block whose compressed form is not smaller is stored raw,
exactly as LevelDB does.
"""

from __future__ import annotations

import zlib

#: Block trailer type tags (mirroring LevelDB's kNoCompression / kSnappy).
TYPE_NONE = 0
TYPE_ZLIB = 1


class Compressor:
    """Strategy interface for per-block compression."""

    name = "abstract"

    def compress(self, data: bytes) -> tuple[bytes, int]:
        """Return ``(payload, type_tag)`` for a block about to be written."""
        raise NotImplementedError


class NoCompression(Compressor):
    name = "none"

    def compress(self, data: bytes) -> tuple[bytes, int]:
        return data, TYPE_NONE


class ZlibCompression(Compressor):
    """zlib level-1; falls back to raw storage when it does not help."""

    name = "zlib"

    def __init__(self, level: int = 1) -> None:
        self.level = level

    def compress(self, data: bytes) -> tuple[bytes, int]:
        packed = zlib.compress(data, self.level)
        if len(packed) < len(data):
            return packed, TYPE_ZLIB
        return data, TYPE_NONE


def decompress(payload: bytes, type_tag: int) -> bytes:
    """Undo :meth:`Compressor.compress` given the stored type tag."""
    if type_tag == TYPE_NONE:
        return payload
    if type_tag == TYPE_ZLIB:
        return zlib.decompress(payload)
    raise ValueError(f"unknown block compression type: {type_tag}")


def compressor_for(name: str) -> Compressor:
    """Factory keyed by :attr:`repro.lsm.options.Options.compression`."""
    if name == "none":
        return NoCompression()
    if name == "zlib":
        return ZlibCompression()
    raise ValueError(f"unknown compression: {name!r}")
