"""The Stand-Alone Lazy Index (paper Section 4.1.2).

Cassandra's strategy: a PUT on the data table issues a blind
``PUT(a_i, [k])`` on the index table — a one-entry posting *fragment* —
"but nothing else.  Thus, the postings list for a_i will be scattered in
different levels.  During merge compaction, we merge these fragmented
lists."  The fragments are merge operands of the storage engine
(:meth:`repro.lsm.db.DB.merge`), combined by
:func:`repro.core.posting.posting_merge_operator` exactly when compaction
touches them.

LOOKUP (Algorithm 3) walks the index table level by level, newest
component first; since fragments only migrate downward through compaction,
every fragment of a key is strictly newer than the same key's fragments in
deeper levels, so the scan may stop as soon as the top-K heap fills at a
level boundary — the property that makes Lazy beat Composite on small-K
queries (Figure 10a).

DEL writes a fragment carrying a deletion marker, which cancels older
postings of the key when fragments merge (during compaction or at query
time).
"""

from __future__ import annotations

from typing import Any

from repro.core.base import IndexKind, LookupResult, SecondaryIndex
from repro.core.posting import decode_posting_list, single_posting_fragment
from repro.core.records import (
    Document,
    attribute_of,
    key_to_bytes,
    key_to_str,
)
from repro.core.topk import TopKBySeq
from repro.core.validity import (
    ValidityChecker,
    attribute_equals,
    attribute_in_range,
)
from repro.lsm.db import DB
from repro.lsm.keys import KIND_DELETE, KIND_MERGE
from repro.lsm.zonemap import encode_attribute


class _HarvestState:
    """Cross-level bookkeeping for one query (see ``LazyIndex._harvest``)."""

    __slots__ = ("resolved", "cancelled")

    def __init__(self) -> None:
        self.resolved: set[str] = set()
        self.cancelled: set[tuple[bytes, str]] = set()


class LazyIndex(SecondaryIndex):
    """Append-only posting fragments merged by compaction."""

    kind = IndexKind.LAZY

    def __init__(self, attribute: str, index_db: DB,
                 checker: ValidityChecker) -> None:
        super().__init__(attribute)
        if index_db.options.merge_operator is None:
            raise ValueError(
                "the Lazy index table must be opened with the posting "
                "merge operator (see repro.core.posting)")
        self.index_db = index_db
        self.checker = checker
        #: Levels visited by LOOKUPs (the "up to L reads" of Table 5).
        self.levels_visited = 0
        self.lookups = 0

    # -- write hooks ---------------------------------------------------------

    def on_put(self, key: bytes, document: Document, seq: int) -> None:
        attr_value = attribute_of(document, self.attribute)
        if attr_value is None:
            return
        self.index_db.merge(encode_attribute(attr_value),
                            single_posting_fragment(key_to_str(key), seq))

    def on_delete(self, key: bytes, old_document: Document | None,
                  seq: int) -> None:
        if old_document is None:
            return
        attr_value = attribute_of(old_document, self.attribute)
        if attr_value is None:
            return
        self.index_db.merge(
            encode_attribute(attr_value),
            single_posting_fragment(key_to_str(key), seq, deleted=True))

    # -- queries --------------------------------------------------------------

    def lookup(self, value: Any, k: int | None = None,
               early_termination: bool = True) -> list[LookupResult]:
        """Algorithm 3: merge the key's fragments, one level at a time."""
        self.lookups += 1
        fragments = self.index_db.fragments_by_level(encode_attribute(value))
        predicate = attribute_equals(self.attribute, value)
        heap: TopKBySeq[LookupResult] = TopKBySeq(k)
        state = _HarvestState()
        for _level, entries in fragments:
            self.levels_visited += 1
            stop_descending = self._consume_level(
                entries, heap, state, predicate)
            if stop_descending:
                break
            if early_termination and heap.is_full:
                break
        return heap.results()

    def _consume_level(self, entries, heap: TopKBySeq[LookupResult],
                       state: "_HarvestState", predicate) -> bool:
        """Process one level's fragments; True if deeper levels are shadowed.

        A ``KIND_VALUE`` entry is a fully folded list (compaction reached a
        base), and a tombstone hides everything older — in both cases
        deeper levels hold only obsolete data for this key.
        """
        for kind, _seq, payload in entries:
            if kind != KIND_MERGE:
                if kind == KIND_DELETE:
                    return True
                self._harvest(b"", decode_posting_list(payload), heap, state,
                              predicate)
                return True
            self._harvest(b"", decode_posting_list(payload), heap, state,
                          predicate)
        return False

    def _harvest(self, index_key: bytes, postings,
                 heap: TopKBySeq[LookupResult], state: "_HarvestState",
                 predicate) -> None:
        """Validate postings against the data table, newest first.

        Bookkeeping rules (shared by LOOKUP and RANGELOOKUP):

        * a primary key whose fate was decided by a data-table GET is
          *resolved* — later (older or duplicate) postings are ignored;
        * a deletion marker *cancels* older postings of the same primary
          key under the same index key (markers are always encountered
          before the postings they cancel, because fragments only migrate
          downward);
        * a posting too old for the heap is skipped without a GET, but left
          unresolved: the same record may carry a newer posting under a
          different attribute value in a range scan.
        """
        for posting in postings:
            if posting.key in state.resolved:
                continue
            scope = (index_key, posting.key)
            if scope in state.cancelled:
                continue
            if posting.deleted:
                state.cancelled.add(scope)
                continue
            if not heap.would_accept(posting.seq):
                continue  # too old: skip the data-table GET entirely
            state.resolved.add(posting.key)
            found = self.checker.fetch_valid(key_to_bytes(posting.key),
                                             predicate)
            if found is None:
                continue
            document, seq = found
            heap.add(seq, LookupResult(posting.key, document, seq))

    def range_lookup(self, low: Any, high: Any, k: int | None = None,
                     early_termination: bool = True) -> list[LookupResult]:
        """Algorithm 6: a level-by-level range scan over the index table.

        "The original range iterator ... does not scan a key within the
        range in lower levels if it already exists in an upper level.  We
        force the iterator to scan level by level (same as LOOKUP)."
        ``early_termination`` stops at a level boundary once K results are
        held; because different attribute values compact at different
        times, this is the paper's behaviour but is only approximately
        top-K — pass ``False`` for an exhaustive (exact) scan.
        """
        low_encoded = encode_attribute(low)
        high_encoded = encode_attribute(high)
        if low_encoded > high_encoded:
            return []
        predicate = attribute_in_range(self.attribute, low, high,
                                       encode_attribute)
        heap: TopKBySeq[LookupResult] = TopKBySeq(k)
        state = _HarvestState()
        shadowed: set[bytes] = set()
        for level in [-1, *range(self.index_db.options.max_levels)]:
            self.levels_visited += 1
            for ikey, payload in self.index_db.scan_level(
                    level, low_encoded, high_encoded):
                if ikey.user_key in shadowed:
                    continue
                if ikey.kind != KIND_MERGE:
                    shadowed.add(ikey.user_key)
                    if ikey.kind == KIND_DELETE:
                        continue
                self._harvest(ikey.user_key, decode_posting_list(payload),
                              heap, state, predicate)
            if early_termination and heap.is_full:
                break
        return heap.results()

    # -- maintenance -------------------------------------------------------------

    def flush(self) -> None:
        self.index_db.flush()

    def compact(self) -> None:
        self.index_db.compact_range()

    def size_bytes(self) -> int:
        return self.index_db.approximate_size()

    def close(self) -> None:
        self.index_db.close()
