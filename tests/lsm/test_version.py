"""Versions, version edits, and the version set."""

import pytest

from repro.lsm.errors import CorruptionError
from repro.lsm.keys import KIND_VALUE, pack_internal_key
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData, VersionEdit, VersionSet
from repro.lsm.zonemap import ZoneMap, encode_attribute


def _meta(number, lo, hi, min_seq=1, max_seq=1, size=1000):
    return FileMetaData(
        file_number=number,
        file_size=size,
        smallest=pack_internal_key(lo.encode(), max_seq, KIND_VALUE),
        largest=pack_internal_key(hi.encode(), min_seq, KIND_VALUE),
        min_seq=min_seq,
        max_seq=max_seq,
    )


class TestFileMetaData:
    def test_user_key_bounds(self):
        meta = _meta(1, "aaa", "mmm")
        assert meta.smallest_user_key == b"aaa"
        assert meta.largest_user_key == b"mmm"
        assert meta.contains_user_key(b"ccc")
        assert not meta.contains_user_key(b"zzz")

    def test_overlaps_user_range(self):
        meta = _meta(1, "d", "h")
        assert meta.overlaps_user_range(b"a", b"d")
        assert meta.overlaps_user_range(b"h", b"z")
        assert meta.overlaps_user_range(None, None)
        assert meta.overlaps_user_range(None, b"e")
        assert meta.overlaps_user_range(b"e", None)
        assert not meta.overlaps_user_range(b"a", b"c")
        assert not meta.overlaps_user_range(b"i", b"z")

    def test_json_roundtrip_with_zonemaps(self):
        meta = _meta(7, "a", "b")
        meta.secondary_zonemaps["UserID"] = ZoneMap(
            encode_attribute("u1"), encode_attribute("u9"))
        restored = FileMetaData.from_json(meta.to_json())
        assert restored == meta


class TestVersionEdit:
    def test_encode_decode_roundtrip(self):
        edit = VersionEdit(log_number=3, next_file_number=10,
                           last_sequence=99)
        edit.add_file(0, _meta(5, "a", "c"))
        edit.delete_file(1, 2)
        edit.compact_pointers.append(
            (1, pack_internal_key(b"m", 1, KIND_VALUE)))
        restored = VersionEdit.decode(edit.encode())
        assert restored.log_number == 3
        assert restored.next_file_number == 10
        assert restored.last_sequence == 99
        assert restored.deleted_files == [(1, 2)]
        assert restored.new_files == edit.new_files
        assert restored.compact_pointers == edit.compact_pointers

    def test_decode_garbage(self):
        with pytest.raises(CorruptionError):
            VersionEdit.decode(b"not json at all {")


class TestVersionSet:
    def test_apply_adds_and_removes(self):
        versions = VersionSet(Options())
        edit = VersionEdit()
        edit.add_file(0, _meta(1, "a", "m"))
        edit.add_file(0, _meta(2, "n", "z"))
        versions.apply(edit)
        assert versions.current.num_files(0) == 2
        edit2 = VersionEdit()
        edit2.delete_file(0, 1)
        edit2.add_file(1, _meta(3, "a", "m"))
        versions.apply(edit2)
        assert versions.current.num_files(0) == 1
        assert versions.current.num_files(1) == 1

    def test_level0_ordered_newest_file_first(self):
        versions = VersionSet(Options())
        edit = VersionEdit()
        edit.add_file(0, _meta(1, "a", "z"))
        edit.add_file(0, _meta(5, "a", "z"))
        edit.add_file(0, _meta(3, "a", "z"))
        versions.apply(edit)
        assert [m.file_number for m in versions.current.levels[0]] == [5, 3, 1]

    def test_deeper_levels_sorted_and_disjoint(self):
        versions = VersionSet(Options())
        edit = VersionEdit()
        edit.add_file(1, _meta(2, "m", "r"))
        edit.add_file(1, _meta(1, "a", "c"))
        versions.apply(edit)
        assert [m.file_number for m in versions.current.levels[1]] == [1, 2]

    def test_overlap_invariant_enforced(self):
        versions = VersionSet(Options())
        edit = VersionEdit()
        edit.add_file(1, _meta(1, "a", "m"))
        edit.add_file(1, _meta(2, "m", "z"))  # shares boundary key "m"
        with pytest.raises(CorruptionError):
            versions.apply(edit)

    def test_counters_monotone(self):
        versions = VersionSet(Options())
        versions.apply(VersionEdit(next_file_number=10, last_sequence=50))
        versions.apply(VersionEdit(next_file_number=5, last_sequence=20))
        assert versions.next_file_number == 10
        assert versions.last_sequence == 50

    def test_new_file_number_increments(self):
        versions = VersionSet(Options())
        assert versions.new_file_number() == 1
        assert versions.new_file_number() == 2

    def test_live_file_numbers(self):
        versions = VersionSet(Options())
        edit = VersionEdit()
        edit.add_file(0, _meta(4, "a", "b"))
        edit.add_file(2, _meta(9, "c", "d"))
        versions.apply(edit)
        assert versions.live_file_numbers() == {4, 9}


class TestVersionQueries:
    def _loaded(self):
        versions = VersionSet(Options())
        edit = VersionEdit()
        edit.add_file(0, _meta(10, "c", "f"))
        edit.add_file(0, _meta(11, "e", "k"))
        edit.add_file(1, _meta(20, "a", "d"))
        edit.add_file(1, _meta(21, "f", "j"))
        edit.add_file(2, _meta(30, "a", "z"))
        return versions.apply(edit)

    def test_files_containing_key_level0_all_overlapping(self):
        version = self._loaded()
        numbers = [m.file_number
                   for m in version.files_containing_key(0, b"e")]
        assert numbers == [11, 10]

    def test_files_containing_key_deep_level_binary_search(self):
        version = self._loaded()
        assert [m.file_number for m in version.files_containing_key(1, b"g")] \
            == [21]
        assert version.files_containing_key(1, b"e") == []

    def test_overlapping_files_level1(self):
        version = self._loaded()
        numbers = [m.file_number
                   for m in version.overlapping_files(1, b"c", b"g")]
        assert numbers == [20, 21]

    def test_overlapping_files_level0_transitive(self):
        version = self._loaded()
        # Asking for just "c".."d" pulls file 10, whose range extends to
        # "f", which overlaps file 11 — so both are selected.
        numbers = {m.file_number
                   for m in version.overlapping_files(0, b"c", b"d")}
        assert numbers == {10, 11}

    def test_level_accounting(self):
        version = self._loaded()
        assert version.total_files() == 5
        assert version.num_nonempty_levels() == 3
        assert version.deepest_nonempty_level() == 2
        assert version.level_size(1) == 2000

    def test_compaction_score_prefers_overfull_l0(self):
        versions = VersionSet(Options(l0_compaction_trigger=2))
        edit = VersionEdit()
        for number in (1, 2, 3, 4):
            edit.add_file(0, _meta(number, "a", "z"))
        versions.apply(edit)
        score, level = versions.current.compaction_score()
        assert level == 0
        assert score == 2.0

    def test_compaction_score_size_based(self):
        versions = VersionSet(Options(l1_target_size=1000))
        edit = VersionEdit()
        edit.add_file(1, _meta(1, "a", "c", size=3000))
        versions.apply(edit)
        score, level = versions.current.compaction_score()
        assert level == 1
        assert score == 3.0
