"""Recovery-path regressions: bugs the crash harness flushed out.

Each test here failed on the engine as originally seeded; together they pin
the recovery contract that ``tests/property/test_crash_consistency.py``
drills exhaustively.
"""

import pytest

from repro.lsm.db import DB
from repro.lsm.errors import FaultInjectedError
from repro.lsm.faults import FaultInjectingVFS
from repro.lsm.manifest import (
    current_tmp_file_name,
    log_file_name,
    table_file_name,
)
from repro.lsm.options import Options
from repro.lsm.vfs import MemoryVFS


def _options(**overrides):
    base = dict(block_size=1024, sstable_target_size=4 * 1024,
                memtable_budget=4 * 1024, l1_target_size=16 * 1024)
    base.update(overrides)
    return Options(**base)


class TestRecoveredWALPersistence:
    def test_wal_replay_survives_a_second_reopen(self):
        """Replayed WAL data must not evaporate when the old log is deleted.

        The seed engine replayed old WALs into the MemTable, then deleted
        them — so the recovered writes existed nowhere durable, and a
        second reopen (or crash) lost them permanently.
        """
        vfs = MemoryVFS()
        db = DB.open(vfs, "db", _options(memtable_budget=1 << 20))
        db.put(b"k1", b"v1")
        db.put(b"k2", b"v2")
        db.close()  # memtable never flushed: data lives only in the WAL

        db2 = DB.open(vfs, "db", _options(memtable_budget=1 << 20))
        assert db2.get(b"k1") == b"v1"
        db2.close()  # no writes this session

        db3 = DB.open(vfs, "db", _options(memtable_budget=1 << 20))
        assert db3.get(b"k1") == b"v1"
        assert db3.get(b"k2") == b"v2"
        db3.close()

    def test_recovery_flushes_replayed_memtable(self):
        vfs = MemoryVFS()
        db = DB.open(vfs, "db", _options(memtable_budget=1 << 20))
        db.put(b"k", b"v")
        db.close()
        db2 = DB.open(vfs, "db", _options(memtable_budget=1 << 20))
        assert db2.memtable.is_empty()
        assert sum(db2.level_file_counts()) >= 1
        assert db2.get(b"k") == b"v"
        assert db2.verify_integrity().ok
        db2.close()

    def test_crash_after_clean_close_loses_nothing(self):
        """close() must sync the WAL tail even with sync_writes off."""
        fvfs = FaultInjectingVFS()
        db = DB.open(fvfs, "db", _options(memtable_budget=1 << 20))
        db.put(b"k", b"v")
        db.close()
        image = fvfs.crash_image("drop")  # power loss right after close
        db2 = DB.open(image, "db", _options(memtable_budget=1 << 20))
        assert db2.get(b"k") == b"v"
        db2.close()


class TestStrayFiles:
    def test_open_tolerates_unparseable_file_names(self):
        """Editor droppings in the DB directory must not abort recovery."""
        vfs = MemoryVFS()
        db = DB.open(vfs, "db", _options())
        db.put(b"k", b"v")
        db.close()
        vfs.write_whole("db/junk.ldb", b"not a table")
        vfs.write_whole("db/notes.log", b"not a wal")
        vfs.write_whole("db/MANIFEST-backup", b"not a manifest")
        db2 = DB.open(vfs, "db", _options())  # seed: ValueError
        assert db2.get(b"k") == b"v"
        # Unrecognized names are skipped, not deleted: they are not ours.
        assert vfs.exists("db/junk.ldb")
        assert vfs.exists("db/notes.log")
        assert vfs.exists("db/MANIFEST-backup")
        assert db2.verify_integrity().ok
        db2.close()

    def test_stranded_current_tmp_is_removed(self):
        vfs = MemoryVFS()
        db = DB.open(vfs, "db", _options())
        db.put(b"k", b"v")
        db.close()
        # Simulate a crash between writing CURRENT.tmp and the rename.
        vfs.write_whole(current_tmp_file_name("db"), b"MANIFEST-999999\n")
        db2 = DB.open(vfs, "db", _options())
        assert not vfs.exists(current_tmp_file_name("db"))
        assert db2.get(b"k") == b"v"
        db2.close()

    def test_orphaned_table_from_interrupted_flush_is_cleaned(self):
        vfs = MemoryVFS()
        db = DB.open(vfs, "db", _options())
        db.put(b"k", b"v")
        db.close()
        # A flush that crashed mid-build leaves a table no manifest names.
        stray = table_file_name("db", 987654)
        vfs.write_whole(stray, b"half-written table bytes")
        db2 = DB.open(vfs, "db", _options())
        assert not vfs.exists(stray)
        assert db2.verify_integrity().ok
        db2.close()


class TestFlushCrashWindow:
    def test_flush_tolerates_missing_old_wal(self):
        """A crash-interrupted earlier flush may have deleted the WAL already."""
        vfs = MemoryVFS()
        db = DB.open(vfs, "db", _options(memtable_budget=1 << 20))
        db.put(b"k", b"v")
        vfs.delete(log_file_name("db", db._log_number))
        db.flush()  # seed: NotFoundError
        assert db.get(b"k") == b"v"
        assert db.verify_integrity().ok
        db.close()

    def test_table_bytes_are_durable_before_manifest_references_them(self):
        """flush must fsync the new table before logging the version edit."""
        fvfs = FaultInjectingVFS()
        db = DB.open(fvfs, "db", _options(memtable_budget=1 << 20))
        for i in range(50):
            db.put(f"k{i:03d}".encode(), (f"v{i}" * 20).encode())
        db.flush()
        # Crash with every un-synced byte lost, *without* a clean close.
        image = fvfs.crash_image("drop")
        db2 = DB.open(image, "db", _options(memtable_budget=1 << 20))
        for i in range(50):
            assert db2.get(f"k{i:03d}".encode()) == (f"v{i}" * 20).encode()
        assert db2.verify_integrity().ok
        db2.close()


class TestInjectedWriteErrors:
    def test_wal_write_error_propagates_and_db_survives(self):
        fvfs = FaultInjectingVFS()
        db = DB.open(fvfs, "db", _options(memtable_budget=1 << 20))
        db.put(b"before", b"1")
        fvfs.schedule_write_error(fvfs.op_count + 1)  # next WAL append
        with pytest.raises(FaultInjectedError):
            db.put(b"doomed", b"x")
        # The failed batch never reached the MemTable: no torn state.
        assert db.get(b"doomed") is None
        db.put(b"after", b"2")
        assert db.get(b"before") == b"1"
        assert db.get(b"after") == b"2"
        db.close()
