"""The SecondaryIndexedDB facade."""

import pytest

from conftest import load_tweets, open_db

from repro.core.base import IndexKind
from repro.core.database import SecondaryIndexedDB
from repro.lsm.errors import DBClosedError, InvalidArgumentError


class TestBaseOperations:
    def test_put_get_delete(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        db.put("t1", {"UserID": "u1", "Body": "hello"})
        assert db.get("t1") == {"UserID": "u1", "Body": "hello"}
        db.delete("t1")
        assert db.get("t1") is None
        db.close()

    def test_put_returns_increasing_seq(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        s1 = db.put("t1", {"UserID": "u1"})
        s2 = db.put("t2", {"UserID": "u1"})
        assert s2 > s1
        db.close()

    def test_bytes_keys_accepted(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        db.put(b"t1", {"UserID": "u1"})
        assert db.get(b"t1") == {"UserID": "u1"}
        db.close()

    def test_lookup_on_unindexed_attribute_raises(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        with pytest.raises(InvalidArgumentError):
            db.lookup("Body", "hello")
        with pytest.raises(InvalidArgumentError):
            db.range_lookup("Body", "a", "z")
        db.close()

    def test_closed_rejects_operations(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        db.close()
        with pytest.raises(DBClosedError):
            db.put("t1", {"UserID": "u1"})
        db.close()  # idempotent

    def test_context_manager(self, index_options):
        with open_db(IndexKind.LAZY, index_options) as db:
            db.put("t1", {"UserID": "u1"})
        with pytest.raises(DBClosedError):
            db.get("t1")


class TestMixedIndexes:
    def test_different_kinds_per_attribute(self, index_options):
        db = SecondaryIndexedDB.open_memory(
            indexes={"UserID": IndexKind.LAZY,
                     "CreationTime": IndexKind.EMBEDDED},
            options=index_options)
        for i in range(40):
            db.put(f"t{i:03d}", {"UserID": f"u{i % 4}",
                                 "CreationTime": 1000 + i})
        assert [r.key for r in db.lookup("UserID", "u1", k=2)] == \
            ["t037", "t033"]
        got = db.range_lookup("CreationTime", 1010, 1012,
                              early_termination=False)
        assert sorted(r.key for r in got) == ["t010", "t011", "t012"]
        db.close()

    def test_unknown_kind_rejected(self, index_options):
        with pytest.raises(InvalidArgumentError):
            SecondaryIndexedDB.open_memory(
                indexes={"UserID": "not-a-kind"}, options=index_options)


class TestDeleteSemantics:
    def test_delete_costs_a_get_with_standalone_indexes(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        db.put("t1", {"UserID": "u1"})
        db.flush()
        reads_before = db.primary.vfs.stats.read_blocks
        db.delete("t1")
        assert db.primary.vfs.stats.read_blocks > reads_before
        db.close()

    def test_delete_free_with_embedded_only(self, index_options):
        db = open_db(IndexKind.EMBEDDED, index_options)
        db.put("t1", {"UserID": "u1"})
        db.flush()
        reads_before = db.primary.vfs.stats.read_blocks
        db.delete("t1")
        assert db.primary.vfs.stats.read_blocks == reads_before
        db.close()

    def test_delete_of_missing_key(self, index_options):
        db = open_db(IndexKind.EAGER, index_options)
        db.delete("ghost")  # must not raise
        assert db.get("ghost") is None
        db.close()


class TestIntrospection:
    def test_size_breakdown_shapes(self, index_options):
        """Figure 8a's ordering: Embedded adds no index table."""
        sizes = {}
        for kind in (IndexKind.EMBEDDED, IndexKind.LAZY, IndexKind.EAGER,
                     IndexKind.NOINDEX):
            db = open_db(kind, index_options)
            load_tweets(db, 300, users=10)
            db.flush()
            breakdown = db.size_breakdown()
            sizes[kind] = sum(breakdown.values())
            if kind in (IndexKind.EMBEDDED, IndexKind.NOINDEX):
                assert breakdown["index:UserID"] == 0
            else:
                assert breakdown["index:UserID"] > 0
            db.close()
        assert sizes[IndexKind.LAZY] > sizes[IndexKind.NOINDEX]
        assert sizes[IndexKind.EAGER] > sizes[IndexKind.NOINDEX]

    def test_io_stats_shape(self, index_options):
        db = open_db(IndexKind.LAZY, index_options)
        load_tweets(db, 100)
        db.lookup("UserID", "u1", k=3)
        stats = db.io_stats()
        assert "primary" in stats
        assert "index:UserID" in stats
        assert stats["validation_gets"] > 0
        db.close()

    def test_total_size(self, index_options):
        db = open_db(IndexKind.COMPOSITE, index_options)
        load_tweets(db, 200)
        db.flush()
        assert db.total_size() == sum(db.size_breakdown().values())
        db.close()


class TestConsistencyUnderUpdates:
    def test_heavy_update_churn(self, index_options):
        for kind in (IndexKind.EMBEDDED, IndexKind.LAZY, IndexKind.EAGER,
                     IndexKind.COMPOSITE):
            db = open_db(kind, index_options)
            # Write each key 3 times, rotating users.
            for round_number in range(3):
                for i in range(60):
                    db.put(f"t{i:03d}",
                           {"UserID": f"u{(i + round_number) % 6}"})
            # Final assignment: user of t_i is u_{(i + 2) % 6}.
            for user_index in range(6):
                got = {r.key for r in db.lookup(
                    "UserID", f"u{user_index}", early_termination=False)}
                want = {f"t{i:03d}" for i in range(60)
                        if (i + 2) % 6 == user_index}
                assert got == want, (kind, user_index)
            db.close()
